"""Bit-parallel two-valued simulation (64 patterns per word).

The PROOFS-style fault simulator and the simulation-based ATPG both need
to push many fully-specified patterns through a circuit cheaply.  This
simulator packs one pattern per bit of a Python integer, evaluating each
gate once per word with bitwise operations — the classical
"parallel-pattern single-fault propagation" substrate.

Values must be fully specified (0/1).  For unknown-value reasoning use
:class:`repro.sim.logicsim.TernarySimulator`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuit.gates import ONE, ZERO, eval_gate2
from ..circuit.graph import topological_order
from ..circuit.netlist import Circuit, NodeKind
from ..errors import SimulationError
from ..obs import MetricsRegistry

WORD_BITS = 64


def pack_patterns(patterns: Sequence[Sequence[int]], position: int) -> int:
    """Pack bit ``position`` of each pattern into one word (pattern i ->
    bit i).  All values must be 0/1, and at most :data:`WORD_BITS`
    patterns fit one word — a 65th pattern would land on bit 64, which
    every masked evaluation silently truncates."""
    if len(patterns) > WORD_BITS:
        raise SimulationError(
            f"cannot pack {len(patterns)} patterns into one "
            f"{WORD_BITS}-bit word; split the batch"
        )
    word = 0
    for i, pattern in enumerate(patterns):
        bit = pattern[position]
        if bit not in (ZERO, ONE):
            raise SimulationError(
                f"pattern {i} position {position} is {bit!r}; parallel "
                "simulation requires fully specified values"
            )
        word |= bit << i
    return word


def unpack_word(word: int, count: int) -> List[int]:
    """Inverse of :func:`pack_patterns` for one signal: bit i -> value i."""
    if count > WORD_BITS:
        raise SimulationError(
            f"cannot unpack {count} patterns from one {WORD_BITS}-bit "
            "word; bits beyond the word limit carry no data"
        )
    return [(word >> i) & 1 for i in range(count)]


class ParallelSimulator:
    """Compiled word-parallel two-valued simulator for one circuit.

    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) receives the
    ``sim.pattern_batches`` / ``sim.words_packed`` effort counters; a
    private registry is created when none is shared, so counting is
    unconditional and the hot path stays branch-free.
    """

    def __init__(
        self, circuit: Circuit, metrics: Optional[MetricsRegistry] = None
    ):
        circuit.check()
        self.circuit = circuit
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._batches = self.metrics.counter(
            "sim.pattern_batches", circuit=circuit.name
        )
        self._words = self.metrics.counter(
            "sim.words_packed", circuit=circuit.name
        )
        self._order = topological_order(circuit)
        self._index: Dict[str, int] = {n: i for i, n in enumerate(self._order)}
        self._inputs = [self._index[n] for n in circuit.inputs]
        self._outputs = [self._index[n] for n in circuit.outputs]
        self._dff_names = circuit.dff_names()
        self._dff_out = [self._index[n] for n in self._dff_names]
        self._dff_d = [
            self._index[circuit.node(n).fanin[0]] for n in self._dff_names
        ]
        self._plan: List[Tuple[int, object, List[int]]] = []
        for name in self._order:
            node = circuit.node(name)
            if node.kind is NodeKind.GATE:
                self._plan.append(
                    (
                        self._index[name],
                        node.gate,
                        [self._index[f] for f in node.fanin],
                    )
                )

    @property
    def num_dffs(self) -> int:
        return len(self._dff_out)

    def node_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise SimulationError(f"no node named {name!r}") from None

    def evaluate(
        self,
        pi_words: Sequence[int],
        state_words: Sequence[int],
        mask: int,
        overrides: Optional[Dict[int, Tuple[int, int]]] = None,
    ) -> List[int]:
        """One combinational evaluation over packed words.

        ``overrides`` maps node index -> ``(affected_bits, forced_word)``:
        in the bit positions of ``affected_bits`` the node's value is
        replaced by ``forced_word`` *after* the node is evaluated and
        before any fanout reads it.  This is how the fault simulator runs
        up to 64 machines per word, each with its own stuck-at fault: a
        stuck-at-1 on node n affecting machine ``i`` is
        ``overrides[n] = (1 << i, 1 << i)``.
        """
        if len(pi_words) != len(self._inputs):
            raise SimulationError(
                f"expected {len(self._inputs)} PI words, got {len(pi_words)}"
            )
        if len(state_words) != len(self._dff_out):
            raise SimulationError(
                f"expected {len(self._dff_out)} state words, got "
                f"{len(state_words)}"
            )
        self._batches.inc()
        self._words.inc(len(pi_words) + len(state_words))
        values = [0] * len(self._order)
        for idx, word in zip(self._inputs, pi_words):
            values[idx] = word & mask
        for idx, word in zip(self._dff_out, state_words):
            values[idx] = word & mask
        if overrides:
            for idx, (affected, forced) in overrides.items():
                if idx in self._sources():
                    values[idx] = (values[idx] & ~affected) | (
                        forced & affected & mask
                    )
        for out_idx, gate, fanin_idx in self._plan:
            word = eval_gate2(gate, [values[i] for i in fanin_idx], mask)
            if overrides and out_idx in overrides:
                affected, forced = overrides[out_idx]
                word = (word & ~affected) | (forced & affected & mask)
            values[out_idx] = word
        return values

    def _sources(self) -> set:
        sources = getattr(self, "_source_set", None)
        if sources is None:
            sources = set(self._inputs) | set(self._dff_out)
            self._source_set = sources
        return sources

    def step(
        self,
        pi_words: Sequence[int],
        state_words: Sequence[int],
        mask: int,
        overrides: Optional[Dict[int, Tuple[int, int]]] = None,
    ) -> Tuple[List[int], List[int]]:
        """Apply one packed vector: returns ``(po_words, next_state_words)``."""
        values = self.evaluate(pi_words, state_words, mask, overrides)
        po_words = [values[i] for i in self._outputs]
        next_state = [values[i] for i in self._dff_d]
        return po_words, next_state

    def run(
        self,
        vectors: Sequence[Sequence[int]],
        initial_state: Sequence[int],
        overrides: Optional[Dict[int, Tuple[int, int]]] = None,
    ) -> Tuple[List[List[int]], List[int]]:
        """Simulate a *single* pattern sequence on all bit positions at
        once (every bit position sees the same vectors; used to carry one
        good machine and 63 faulty machines — see the fault simulator).

        Returns ``(po_words_per_cycle, final_state_words)``.
        """
        mask = (1 << WORD_BITS) - 1
        state_words = [
            (mask if bit == ONE else 0) for bit in initial_state
        ]
        po_trace: List[List[int]] = []
        for vector in vectors:
            pi_words = [mask if bit == ONE else 0 for bit in vector]
            po_words, state_words = self.step(
                pi_words, state_words, mask, overrides
            )
            po_trace.append(po_words)
        return po_trace, state_words
