"""Compiled word-op simulation kernels.

The bit-parallel simulators all walk the same road: levelize the
netlist once, then evaluate every gate over packed machine words, many
times.  This module compiles that walk into a **flat word-op program**
— a tuple-per-gate evaluation plan with every fanin resolved to a flat
slot index at compile time — and then lowers the program into
generated Python kernels:

* the **plan** is pure data: ``(opcode, out_slot, in_slots)`` tuples in
  topological order, one per gate, with integer opcodes per gate type.
  Plan emission depends only on declaration order (via
  :func:`~repro.circuit.graph.topological_order`), never on dict hash
  order, so plans are PYTHONHASHSEED-stable and identical across worker
  processes.
* the **compiled kernels** are Python source generated from the plan
  (one bitwise expression per gate, constants folded, no per-gate
  dispatch, no dict lookups) and ``exec``-compiled once per circuit:
  a *clean* kernel for override-free evaluation and a *masked* kernel
  through which every gate's value passes a keep/force pair
  (``V[o] = (expr) & K[o] | F[o]``).  Stuck-at override programs are
  precomputed at batch-build time as flat ``K``/``F`` arrays
  (identity almost everywhere), so the fault simulator pays for
  overrides once per batch instead of probing a dict per gate per
  step — and never recompiles, however the batch composition churns.
* the **reference interpreter** (:meth:`CompiledProgram.interpret`)
  executes the same plan tuples through explicit opcode dispatch.  It
  is deliberately retained as the slow twin of the generated kernels:
  the differential oracle in ``tests/sim/test_compile_oracle.py`` pins
  the two byte-identical on random circuits, patterns and override
  maps.

A two-bit interleaved encoding path (:class:`TernaryWordProgram`)
carries ternary 0/1/X logic through the same compilation scheme: each
signal owns two adjacent word slots (a "could be 0" rail and a "could
be 1" rail; neither set means X), so :class:`~repro.sim.logicsim.
TernarySimulator` consumers can migrate to word-parallel ternary
simulation without a third value system.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuit.gates import ONE, X, ZERO, GateType
from ..circuit.graph import topological_order
from ..circuit.netlist import Circuit, NodeKind
from ..errors import SimulationError

# --------------------------------------------------------------------------
# Word-op opcodes.  Small ints so plan tuples are compact, comparable and
# printable; the mapping is part of the plan's stable emission contract.
# --------------------------------------------------------------------------

OP_BUF = 0
OP_NOT = 1
OP_AND = 2
OP_OR = 3
OP_NAND = 4
OP_NOR = 5
OP_XOR = 6
OP_XNOR = 7
OP_CONST0 = 8
OP_CONST1 = 9

_GATE_OPCODE = {
    GateType.BUF: OP_BUF,
    GateType.NOT: OP_NOT,
    GateType.AND: OP_AND,
    GateType.OR: OP_OR,
    GateType.NAND: OP_NAND,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
    GateType.CONST0: OP_CONST0,
    GateType.CONST1: OP_CONST1,
}

OPCODE_NAMES = {
    OP_BUF: "buf",
    OP_NOT: "not",
    OP_AND: "and",
    OP_OR: "or",
    OP_NAND: "nand",
    OP_NOR: "nor",
    OP_XOR: "xor",
    OP_XNOR: "xnor",
    OP_CONST0: "const0",
    OP_CONST1: "const1",
}

WordOp = Tuple[int, int, Tuple[int, ...]]  # (opcode, out_slot, in_slots)


def _two_valued_expr(opcode: int, in_slots: Tuple[int, ...]) -> str:
    """The two-valued bitwise expression for one word op.

    Interior values are *not* masked: Python's two's-complement ints
    keep every bitwise op exact, so inverting ops may leave
    sign-extended words whose bits above the pattern mask are garbage.
    Sources are masked on load and every extraction point (POs, DFF D
    inputs) masks on read, so the garbage is never observed — and the
    hot loop saves one ``& m`` per inverting gate.
    """
    refs = [f"V[{slot}]" for slot in in_slots]
    if opcode == OP_CONST0:
        return "0"
    if opcode == OP_CONST1:
        return "m"
    if opcode == OP_BUF:
        return refs[0]
    if opcode == OP_NOT:
        return f"~{refs[0]}"
    if opcode == OP_AND:
        return " & ".join(refs)
    if opcode == OP_NAND:
        return f"~({' & '.join(refs)})"
    if opcode == OP_OR:
        return " | ".join(refs)
    if opcode == OP_NOR:
        return f"~({' | '.join(refs)})"
    if opcode == OP_XOR:
        return " ^ ".join(refs)
    if opcode == OP_XNOR:
        return f"~({' ^ '.join(refs)})"
    raise SimulationError(f"unknown opcode {opcode}")


def compile_plan(circuit: Circuit) -> Tuple[WordOp, ...]:
    """Emit the flat word-op plan for ``circuit`` (gates only, in
    topological order, fanins resolved to slot indices)."""
    order = topological_order(circuit)
    index = {name: i for i, name in enumerate(order)}
    plan: List[WordOp] = []
    for name in order:
        node = circuit.node(name)
        if node.kind is NodeKind.GATE:
            plan.append(
                (
                    _GATE_OPCODE[node.gate],
                    index[name],
                    tuple(index[f] for f in node.fanin),
                )
            )
    return tuple(plan)


class CompiledProgram:
    """One circuit compiled to a word-op plan plus generated kernels.

    The circuit must not be structurally modified after compilation;
    :func:`compiled_program_cached` checks the netlist's structure
    version and recompiles when it changed.
    """

    def __init__(self, circuit: Circuit):
        circuit.check()
        self.circuit = circuit
        self.order: Tuple[str, ...] = tuple(topological_order(circuit))
        self.index: Dict[str, int] = {
            name: i for i, name in enumerate(self.order)
        }
        self.num_slots = len(self.order)
        self.input_slots: Tuple[int, ...] = tuple(
            self.index[name] for name in circuit.inputs
        )
        self.output_slots: Tuple[int, ...] = tuple(
            self.index[name] for name in circuit.outputs
        )
        dff_names = circuit.dff_names()
        self.dff_out_slots: Tuple[int, ...] = tuple(
            self.index[name] for name in dff_names
        )
        self.dff_d_slots: Tuple[int, ...] = tuple(
            self.index[circuit.node(name).fanin[0]] for name in dff_names
        )
        self.source_slots = frozenset(self.input_slots) | frozenset(
            self.dff_out_slots
        )
        self.plan: Tuple[WordOp, ...] = tuple(
            (
                _GATE_OPCODE[circuit.node(name).gate],
                self.index[name],
                tuple(self.index[f] for f in circuit.node(name).fanin),
            )
            for name in self.order
            if circuit.node(name).kind is NodeKind.GATE
        )
        # Two kernels per circuit, compiled once: the clean kernel for
        # override-free evaluation and the masked kernel, which routes
        # every gate's value through per-slot keep/force words.  Batch
        # override programs are the (K, F) arrays fed to the latter —
        # built per fault batch, never recompiled.
        self.kernel = self._compile_kernel(masked=False)
        self.masked_kernel = self._compile_kernel(masked=True)

    # -- generated kernels -------------------------------------------------

    def render_source(self, masked: bool = False) -> str:
        """The generated kernel source (deterministic per plan — the
        hash-seed stability test prints this alongside the plan tuples).

        The masked variant applies
        ``(word & ~affected) | (forced & affected & mask)`` per gate
        with ``K[o] = ~affected`` and ``F[o]`` pre-masked at bind time;
        unoverridden slots carry the identity pair ``(-1, 0)``.
        """
        if masked:
            lines = ["def _wordop_masked_kernel(V, m, K, F):"]
        else:
            lines = ["def _wordop_kernel(V, m):"]
        for opcode, out_slot, in_slots in self.plan:
            expr = _two_valued_expr(opcode, in_slots)
            if masked:
                lines.append(
                    f"    V[{out_slot}] = ({expr}) & K[{out_slot}] "
                    f"| F[{out_slot}]"
                )
            else:
                lines.append(f"    V[{out_slot}] = {expr}")
        if len(lines) == 1:
            lines.append("    pass")
        return "\n".join(lines) + "\n"

    def _compile_kernel(self, masked: bool) -> Callable:
        namespace: Dict[str, object] = {}
        variant = "masked" if masked else "clean"
        exec(  # noqa: S102 - source generated from the plan above
            compile(
                self.render_source(masked),
                f"<wordop:{self.circuit.name}:{variant}>",
                "exec",
            ),
            namespace,
        )
        name = "_wordop_masked_kernel" if masked else "_wordop_kernel"
        return namespace[name]

    def override_arrays(
        self,
        gate_overrides: Dict[int, Tuple[int, int]],
        mask: int,
    ) -> Tuple[List[int], List[int]]:
        """Precompute one batch's override program for the masked
        kernel: flat keep/force arrays, identity everywhere except the
        overridden gate slots."""
        keep = [-1] * self.num_slots
        force = [0] * self.num_slots
        for slot, (affected, forced) in gate_overrides.items():
            if slot in self.source_slots or not 0 <= slot < self.num_slots:
                raise SimulationError(
                    f"cannot override slot {slot}: not a gate slot "
                    "(source overrides are applied before the kernel runs)"
                )
            keep[slot] = ~affected
            force[slot] = forced & affected & mask
        return keep, force

    # -- reference interpreter --------------------------------------------

    def interpret(
        self,
        values: List[int],
        mask: int,
        overrides: Optional[Dict[int, Tuple[int, int]]] = None,
    ) -> None:
        """Execute the plan through explicit opcode dispatch.

        The semantic twin of the generated kernels, kept as the slow
        reference for the differential oracle (``overrides`` maps gate
        slot -> ``(affected_bits, forced_word)`` exactly like
        :meth:`ParallelSimulator.evaluate <repro.sim.parallel.
        ParallelSimulator.evaluate>` documents).  Word values mirror the
        kernels bit-for-bit *including* the sign-extended garbage above
        the mask (interior values are unmasked in both), so the oracle
        can compare whole value arrays, not just extraction points —
        which is why AND/NAND fold from the first operand instead of a
        mask seed.
        """
        for opcode, out_slot, in_slots in self.plan:
            if opcode == OP_AND:
                word = values[in_slots[0]]
                for slot in in_slots[1:]:
                    word &= values[slot]
            elif opcode == OP_OR:
                word = 0
                for slot in in_slots:
                    word |= values[slot]
            elif opcode == OP_NAND:
                word = values[in_slots[0]]
                for slot in in_slots[1:]:
                    word &= values[slot]
                word = ~word
            elif opcode == OP_NOR:
                word = 0
                for slot in in_slots:
                    word |= values[slot]
                word = ~word
            elif opcode == OP_XOR:
                word = 0
                for slot in in_slots:
                    word ^= values[slot]
            elif opcode == OP_XNOR:
                word = 0
                for slot in in_slots:
                    word ^= values[slot]
                word = ~word
            elif opcode == OP_NOT:
                word = ~values[in_slots[0]]
            elif opcode == OP_BUF:
                word = values[in_slots[0]]
            elif opcode == OP_CONST0:
                word = 0
            elif opcode == OP_CONST1:
                word = mask
            else:
                raise SimulationError(f"unknown opcode {opcode}")
            if overrides and out_slot in overrides:
                affected, forced = overrides[out_slot]
                word = (word & ~affected) | (forced & affected & mask)
            values[out_slot] = word


# --------------------------------------------------------------------------
# Per-circuit program cache.
# --------------------------------------------------------------------------

_PROGRAM_CACHE: "weakref.WeakKeyDictionary[Circuit, Tuple[int, CompiledProgram]]" = (
    weakref.WeakKeyDictionary()
)


def compiled_program_cached(circuit: Circuit) -> CompiledProgram:
    """One :class:`CompiledProgram` per live circuit object.

    Every simulator bound to the same netlist (the good-machine
    simulator, each engine's fault simulator, the expansion pass)
    shares one compilation (plan plus both generated kernels).  The
    cache entry is validated against the netlist's structure version,
    so mutating a circuit (synthesis cleanup, retiming) transparently
    recompiles on next use instead of aliasing a stale plan.
    """
    cached = _PROGRAM_CACHE.get(circuit)
    version = circuit.structure_version
    if cached is not None and cached[0] == version:
        return cached[1]
    program = CompiledProgram(circuit)
    _PROGRAM_CACHE[circuit] = (version, program)
    return program


def clear_program_cache() -> None:
    """Drop all cached compiled programs (tests and the suite-level
    :func:`repro.harness.suite.clear_caches` use this)."""
    _PROGRAM_CACHE.clear()


# --------------------------------------------------------------------------
# Two-bit interleaved ternary encoding.
# --------------------------------------------------------------------------

_TERNARY_RAILS = {
    ZERO: (1, 0),  # (zero rail, one rail)
    ONE: (0, 1),
    X: (0, 0),
}


def pack_ternary_patterns(
    patterns: Sequence[Sequence[int]], position: int
) -> Tuple[int, int]:
    """Pack position ``position`` of ternary patterns into a dual-rail
    word pair ``(zero_word, one_word)``; pattern i lands on bit i of
    both rails (neither bit set encodes X)."""
    zero_word = 0
    one_word = 0
    for i, pattern in enumerate(patterns):
        value = pattern[position]
        try:
            z, o = _TERNARY_RAILS[value]
        except (KeyError, TypeError):
            raise SimulationError(
                f"pattern {i} position {position} is {value!r}; expected "
                "a ternary 0/1/X value"
            ) from None
        zero_word |= z << i
        one_word |= o << i
    return zero_word, one_word


def unpack_ternary_word(pair: Tuple[int, int], count: int) -> List[int]:
    """Inverse of :func:`pack_ternary_patterns` for one signal."""
    zero_word, one_word = pair
    if zero_word & one_word:
        raise SimulationError(
            "invalid dual-rail encoding: a lane claims both 0 and 1"
        )
    values = []
    for i in range(count):
        if (zero_word >> i) & 1:
            values.append(ZERO)
        elif (one_word >> i) & 1:
            values.append(ONE)
        else:
            values.append(X)
    return values


def _ternary_lines(
    opcode: int, out_slot: int, in_slots: Tuple[int, ...]
) -> List[str]:
    """Generated dual-rail lines for one gate.

    Signal ``s`` owns interleaved slots ``2s`` (zero rail) and
    ``2s + 1`` (one rail); the emitted expressions implement the
    controlling-value ternary semantics of :func:`repro.circuit.gates.
    eval_gate` rail-parallel.
    """
    z_out, o_out = 2 * out_slot, 2 * out_slot + 1
    zs = [f"V[{2 * slot}]" for slot in in_slots]
    os_ = [f"V[{2 * slot + 1}]" for slot in in_slots]
    if opcode == OP_CONST0:
        return [f"    V[{z_out}] = m", f"    V[{o_out}] = 0"]
    if opcode == OP_CONST1:
        return [f"    V[{z_out}] = 0", f"    V[{o_out}] = m"]
    if opcode == OP_BUF:
        return [f"    V[{z_out}] = {zs[0]}", f"    V[{o_out}] = {os_[0]}"]
    if opcode == OP_NOT:
        return [f"    V[{z_out}] = {os_[0]}", f"    V[{o_out}] = {zs[0]}"]
    if opcode in (OP_AND, OP_NAND):
        one_expr = " & ".join(os_)  # 1 iff every input is 1
        zero_expr = " | ".join(zs)  # 0 iff any input is 0
        if opcode == OP_AND:
            return [
                f"    V[{z_out}] = {zero_expr}",
                f"    V[{o_out}] = {one_expr}",
            ]
        return [
            f"    V[{z_out}] = {one_expr}",
            f"    V[{o_out}] = {zero_expr}",
        ]
    if opcode in (OP_OR, OP_NOR):
        one_expr = " | ".join(os_)
        zero_expr = " & ".join(zs)
        if opcode == OP_OR:
            return [
                f"    V[{z_out}] = {zero_expr}",
                f"    V[{o_out}] = {one_expr}",
            ]
        return [
            f"    V[{z_out}] = {one_expr}",
            f"    V[{o_out}] = {zero_expr}",
        ]
    if opcode in (OP_XOR, OP_XNOR):
        known = " & ".join(f"({z} | {o})" for z, o in zip(zs, os_))
        odd = " ^ ".join(os_)
        lines = [f"    t = {known}", f"    u = {odd}"]
        if opcode == OP_XOR:
            lines.append(f"    V[{o_out}] = u & t")
            lines.append(f"    V[{z_out}] = t & ~u")
        else:
            lines.append(f"    V[{z_out}] = u & t")
            lines.append(f"    V[{o_out}] = t & ~u")
        return lines
    raise SimulationError(f"unknown opcode {opcode}")


class TernaryWordProgram:
    """Word-parallel ternary simulation over the two-bit interleaved
    encoding (the migration path for :class:`~repro.sim.logicsim.
    TernarySimulator` consumers that need many ternary patterns per
    pass — state-traversal sweeps, X-initialization studies).

    Each packed lane carries one independent ternary pattern; values
    travel as ``(zero_word, one_word)`` rail pairs built with
    :func:`pack_ternary_patterns`.
    """

    def __init__(self, circuit: Circuit):
        self.program = compiled_program_cached(circuit)
        self.circuit = circuit
        lines = ["def _ternary_kernel(V, m):"]
        body = False
        for opcode, out_slot, in_slots in self.program.plan:
            lines.extend(_ternary_lines(opcode, out_slot, in_slots))
            body = True
        if not body:
            lines.append("    pass")
        namespace: Dict[str, object] = {}
        exec(  # noqa: S102 - source generated from the plan above
            compile(
                "\n".join(lines) + "\n",
                f"<ternary-wordop:{circuit.name}>",
                "exec",
            ),
            namespace,
        )
        self._kernel = namespace["_ternary_kernel"]

    def evaluate(
        self,
        pi_pairs: Sequence[Tuple[int, int]],
        state_pairs: Sequence[Tuple[int, int]],
        mask: int,
    ) -> List[Tuple[int, int]]:
        """One combinational evaluation; returns per-slot rail pairs."""
        program = self.program
        if len(pi_pairs) != len(program.input_slots):
            raise SimulationError(
                f"expected {len(program.input_slots)} PI rail pairs, got "
                f"{len(pi_pairs)}"
            )
        if len(state_pairs) != len(program.dff_out_slots):
            raise SimulationError(
                f"expected {len(program.dff_out_slots)} state rail pairs, "
                f"got {len(state_pairs)}"
            )
        values = [0] * (2 * program.num_slots)
        for slot, (zero_word, one_word) in zip(
            program.input_slots, pi_pairs
        ):
            if zero_word & one_word:
                raise SimulationError(
                    "invalid dual-rail encoding: a lane claims both 0 and 1"
                )
            values[2 * slot] = zero_word & mask
            values[2 * slot + 1] = one_word & mask
        for slot, (zero_word, one_word) in zip(
            program.dff_out_slots, state_pairs
        ):
            if zero_word & one_word:
                raise SimulationError(
                    "invalid dual-rail encoding: a lane claims both 0 and 1"
                )
            values[2 * slot] = zero_word & mask
            values[2 * slot + 1] = one_word & mask
        self._kernel(values, mask)
        return [
            (values[2 * slot], values[2 * slot + 1])
            for slot in range(program.num_slots)
        ]

    def step(
        self,
        pi_pairs: Sequence[Tuple[int, int]],
        state_pairs: Sequence[Tuple[int, int]],
        mask: int,
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
        """Apply one packed ternary vector: ``(po_pairs, next_state)``."""
        pairs = self.evaluate(pi_pairs, state_pairs, mask)
        program = self.program
        po_pairs = [pairs[slot] for slot in program.output_slots]
        next_state = [pairs[slot] for slot in program.dff_d_slots]
        return po_pairs, next_state
