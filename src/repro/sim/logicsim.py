"""Ternary (0/1/X) compiled logic simulation.

:class:`TernarySimulator` evaluates the combinational view of a circuit
in topological order and steps the registers explicitly.  X propagation
follows controlling-value semantics (see :mod:`repro.circuit.gates`), so
the simulator is exactly the engine a sequential ATPG needs for circuit
initialization reasoning and the engine the reachability analyses use
for explicit state traversal.

The simulator compiles the netlist once (node order, fanin index lists)
and is then reused across many vectors, which matters because the fault
simulator and the state-traversal analyses call it millions of times.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..circuit.gates import X, eval_gate
from ..circuit.graph import topological_order
from ..circuit.netlist import Circuit, NodeKind
from ..errors import SimulationError


@dataclasses.dataclass
class SimTrace:
    """Cycle-by-cycle record of a multi-vector simulation.

    Attributes:
        inputs:  the applied PI vectors (ternary tuples).
        outputs: PO values observed each cycle.
        states:  register state *entering* each cycle; ``states[0]`` is
                 the initial state and ``states[-1]`` (one longer than
                 ``inputs``) is the state after the final vector.
    """

    inputs: List[Tuple[int, ...]]
    outputs: List[Tuple[int, ...]]
    states: List[Tuple[int, ...]]

    def final_state(self) -> Tuple[int, ...]:
        return self.states[-1]

    def distinct_states(self) -> set:
        """Fully-specified states visited (states containing X excluded)."""
        return {s for s in self.states if X not in s}


class TernarySimulator:
    """Compiled three-valued simulator for one circuit.

    The circuit must not be structurally modified after construction;
    build a new simulator if it is.
    """

    def __init__(self, circuit: Circuit):
        circuit.check()
        self.circuit = circuit
        self._order = topological_order(circuit)
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self._order)
        }
        self._inputs = [self._index[name] for name in circuit.inputs]
        self._outputs = [self._index[name] for name in circuit.outputs]
        self._dff_names = circuit.dff_names()
        self._dff_out = [self._index[name] for name in self._dff_names]
        self._dff_d = [
            self._index[circuit.node(name).fanin[0]] for name in self._dff_names
        ]
        # Pre-compile per-gate evaluation plans in topological order.
        self._plan: List[Tuple[int, object, List[int]]] = []
        for name in self._order:
            node = circuit.node(name)
            if node.kind is NodeKind.GATE:
                self._plan.append(
                    (
                        self._index[name],
                        node.gate,
                        [self._index[f] for f in node.fanin],
                    )
                )
        self._initial_state = circuit.initial_state()

    # -- basic queries -------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    @property
    def num_outputs(self) -> int:
        return len(self._outputs)

    @property
    def num_dffs(self) -> int:
        return len(self._dff_out)

    def initial_state(self) -> Tuple[int, ...]:
        return self._initial_state

    def node_value(self, values: Sequence[int], name: str) -> int:
        """Look up one node's value in a value array returned by
        :meth:`evaluate`."""
        return values[self._index[name]]

    # -- evaluation -----------------------------------------------------------

    def evaluate(
        self, pi_values: Sequence[int], state: Sequence[int]
    ) -> List[int]:
        """One combinational evaluation; returns the full node-value array
        indexed by compiled order (use :meth:`node_value` to read it)."""
        if len(pi_values) != len(self._inputs):
            raise SimulationError(
                f"expected {len(self._inputs)} PI values, got {len(pi_values)}"
            )
        if len(state) != len(self._dff_out):
            raise SimulationError(
                f"expected {len(self._dff_out)} state values, got {len(state)}"
            )
        values = [X] * len(self._order)
        for idx, value in zip(self._inputs, pi_values):
            values[idx] = value
        for idx, value in zip(self._dff_out, state):
            values[idx] = value
        for out_idx, gate, fanin_idx in self._plan:
            values[out_idx] = eval_gate(gate, [values[i] for i in fanin_idx])
        return values

    def step(
        self, pi_values: Sequence[int], state: Sequence[int]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Apply one vector: returns ``(po_values, next_state)``."""
        values = self.evaluate(pi_values, state)
        po_values = tuple(values[i] for i in self._outputs)
        next_state = tuple(values[i] for i in self._dff_d)
        return po_values, next_state

    def run(
        self,
        vectors: Iterable[Sequence[int]],
        initial_state: Optional[Sequence[int]] = None,
    ) -> SimTrace:
        """Simulate a vector sequence from the initial (or given) state."""
        state = tuple(
            self._initial_state if initial_state is None else initial_state
        )
        if len(state) != len(self._dff_out):
            raise SimulationError(
                f"expected {len(self._dff_out)} state values, got {len(state)}"
            )
        trace = SimTrace(inputs=[], outputs=[], states=[state])
        for vector in vectors:
            po_values, state = self.step(vector, state)
            trace.inputs.append(tuple(vector))
            trace.outputs.append(po_values)
            trace.states.append(state)
        return trace

    def next_states(
        self, state: Sequence[int], pi_vectors: Iterable[Sequence[int]]
    ) -> List[Tuple[int, ...]]:
        """Successor states of ``state`` under each vector (used by the
        explicit-state reachability cross-check)."""
        return [self.step(v, state)[1] for v in pi_vectors]


def values_by_name(
    simulator: TernarySimulator, values: Sequence[int]
) -> Mapping[str, int]:
    """Render a compiled value array as a name->value dict (debug aid)."""
    return {
        name: values[simulator._index[name]] for name in simulator._order
    }
