"""Logic simulation substrates: ternary compiled simulation and 64-way
bit-parallel two-valued simulation on compiled word-op kernels."""

from .compile import (
    CompiledProgram,
    TernaryWordProgram,
    clear_program_cache,
    compile_plan,
    compiled_program_cached,
    pack_ternary_patterns,
    unpack_ternary_word,
)
from .logicsim import SimTrace, TernarySimulator, values_by_name
from .parallel import (
    WORD_BITS,
    BoundStepper,
    ParallelSimulator,
    pack_patterns,
    unpack_word,
)

__all__ = [
    "BoundStepper",
    "CompiledProgram",
    "ParallelSimulator",
    "SimTrace",
    "TernarySimulator",
    "TernaryWordProgram",
    "WORD_BITS",
    "clear_program_cache",
    "compile_plan",
    "compiled_program_cached",
    "pack_patterns",
    "pack_ternary_patterns",
    "unpack_ternary_word",
    "unpack_word",
    "values_by_name",
]
