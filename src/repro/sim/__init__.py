"""Logic simulation substrates: ternary compiled simulation and 64-way
bit-parallel two-valued simulation."""

from .logicsim import SimTrace, TernarySimulator, values_by_name
from .parallel import (
    WORD_BITS,
    ParallelSimulator,
    pack_patterns,
    unpack_word,
)

__all__ = [
    "ParallelSimulator",
    "SimTrace",
    "TernarySimulator",
    "WORD_BITS",
    "pack_patterns",
    "unpack_word",
    "values_by_name",
]
