"""Small shared helpers used across subsystems.

Kept deliberately tiny: anything with domain meaning lives in its own
subpackage.  These are generic conveniences (deterministic RNG plumbing,
bit twiddling, name uniquification) that several substrates need.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterable, Iterator, List, Sequence


def make_rng(seed: int) -> random.Random:
    """Return a private :class:`random.Random` for the given seed.

    Every randomized component in the library (FSM generation, random
    test-pattern fill, simulation-based ATPG) takes an explicit integer
    seed and derives its generator through this function, so experiment
    results are reproducible run-to-run and independent of global
    ``random`` state.
    """
    return random.Random(seed)


def bits_needed(count: int) -> int:
    """Minimum number of bits needed to give `count` items distinct codes.

    ``bits_needed(1) == 1`` by convention (a 1-state machine still gets a
    register in the synthesized circuit).
    """
    if count < 1:
        raise ValueError(f"bits_needed requires a positive count, got {count}")
    return max(1, (count - 1).bit_length())


def int_to_bits(value: int, width: int) -> List[int]:
    """Little-endian bit list of ``value``, exactly ``width`` long.

    Bit 0 of the result is the least-significant bit of ``value``.
    """
    if value < 0:
        raise ValueError(f"int_to_bits requires a non-negative value, got {value}")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits` (little-endian)."""
    result = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} is {bit!r}, expected 0 or 1")
        result |= bit << i
    return result


def unique_name(base: str, taken: Iterable[str]) -> str:
    """Return ``base`` or ``base_1``, ``base_2``, ... — first not in ``taken``.

    ``taken`` is consumed into a set, so pass a container when calling in
    a loop and maintain it yourself for efficiency.
    """
    taken_set = set(taken)
    if base not in taken_set:
        return base
    for i in itertools.count(1):
        candidate = f"{base}_{i}"
        if candidate not in taken_set:
            return candidate
    raise AssertionError("unreachable")


class NameAllocator:
    """Stateful unique-name factory for netlist construction.

    Synthesis, retiming and time-frame expansion all create many
    intermediate signals; this class centralizes the "next free name"
    bookkeeping so generated netlists never collide.
    """

    def __init__(self, taken: Iterable[str] = ()):
        self._taken = set(taken)
        self._counters: Dict[str, int] = {}

    def reserve(self, name: str) -> None:
        """Mark ``name`` as used without allocating it."""
        self._taken.add(name)

    def fresh(self, base: str) -> str:
        """Allocate and return a new unique name derived from ``base``."""
        if base not in self._taken:
            self._taken.add(base)
            return base
        counter = self._counters.get(base, 0)
        while True:
            counter += 1
            candidate = f"{base}_{counter}"
            if candidate not in self._taken:
                self._counters[base] = counter
                self._taken.add(candidate)
                return candidate

    def __contains__(self, name: str) -> bool:
        return name in self._taken


def chunked(items: Sequence, size: int) -> Iterator[Sequence]:
    """Yield successive slices of ``items`` of length ``size`` (last may
    be shorter).  Used by the bit-parallel simulators to group patterns
    into machine words."""
    if size < 1:
        raise ValueError(f"chunk size must be positive, got {size}")
    for start in range(0, len(items), size):
        yield items[start : start + size]


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    return bin(value).count("1")


def note_legacy_entry(old: str, new: str) -> None:
    """One-line stderr pointer from a legacy ``python -m`` entry point
    to its ``python -m repro`` dispatcher spelling.  Called only from
    ``__main__`` guards, so imports and dispatcher delegation stay
    silent."""
    import sys

    print(
        f"note: '{old}' is deprecated; prefer '{new}' (same arguments)",
        file=sys.stderr,
    )


def format_engineering(value: float) -> str:
    """Format a number the way the paper's tables do.

    Small values print plainly (``32``, ``0.73``); large or tiny values
    use compact scientific notation (``5.24E5``, ``2.0E-4``).
    """
    if value == 0:
        return "0"
    magnitude = abs(value)
    if 0.01 <= magnitude < 100000:
        if float(value).is_integer():
            return str(int(value))
        return f"{value:.2f}".rstrip("0").rstrip(".")
    mantissa_exp = f"{value:.2E}"
    mantissa, exponent = mantissa_exp.split("E")
    mantissa = mantissa.rstrip("0").rstrip(".")
    exp_value = int(exponent)
    return f"{mantissa}E{exp_value}"
