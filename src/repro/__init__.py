"""repro — reproduction of "Complexity of Sequential ATPG" (DATE 1995).

A production-quality Python stack for studying the complexity of
structural sequential test generation:

* ``repro.circuit`` — gate-level sequential netlists, BLIF I/O.
* ``repro.logic``   — cubes/covers, espresso-style minimization, BDDs.
* ``repro.fsm``     — finite state machines, KISS2, benchmark suite,
  state minimization and state assignment.
* ``repro.synth``   — FSM-to-netlist synthesis pipeline (SIS substitute).
* ``repro.retime``  — Leiserson-Saxe retiming and atomic register moves.
* ``repro.sim``     — ternary event-driven and bit-parallel simulators.
* ``repro.fault``   — stuck-at fault model, collapsing, fault simulation.
* ``repro.atpg``    — three structural sequential ATPG engines.
* ``repro.analysis``— sequential depth, cycles, density of encoding.
* ``repro.harness`` — experiment drivers regenerating the paper's
  tables (1-8) and Figure 3.

See DESIGN.md for the system inventory and the per-experiment index.
"""

__version__ = "1.0.0"

from .errors import (
    AnalysisError,
    AtpgError,
    CircuitError,
    FaultError,
    FsmError,
    LintError,
    ParseError,
    ReproError,
    RetimingError,
    SimulationError,
    SynthesisError,
)

__all__ = [
    "AnalysisError",
    "AtpgError",
    "CircuitError",
    "FaultError",
    "FsmError",
    "LintError",
    "ParseError",
    "ReproError",
    "RetimingError",
    "SimulationError",
    "SynthesisError",
    "__version__",
]
