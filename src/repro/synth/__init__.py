"""Synthesis pipeline: FSM → encoded covers → minimized SOP →
multi-level gate network mapped onto the library (SIS substitute)."""

from .library import DEFAULT_LIBRARY, DFF_AREA, GateLibrary, GateSpec
from .mapping import CircuitCost, circuit_cost, map_to_library
from .scripts import (
    SCRIPT_DELAY,
    SCRIPT_RUGGED,
    SynthesisScript,
    circuit_name,
    script_by_name,
)
from .synthesize import (
    RESET_INPUT,
    SynthesisResult,
    behavioral_check,
    build_covers,
    synthesize,
)

__all__ = [
    "CircuitCost",
    "DEFAULT_LIBRARY",
    "DFF_AREA",
    "GateLibrary",
    "GateSpec",
    "RESET_INPUT",
    "SCRIPT_DELAY",
    "SCRIPT_RUGGED",
    "SynthesisResult",
    "SynthesisScript",
    "behavioral_check",
    "build_covers",
    "circuit_cost",
    "circuit_name",
    "map_to_library",
    "script_by_name",
    "synthesize",
]
