"""Gate library: timing and area models.

Stand-in for the reduced ``mcnc.genlib`` library the paper mapped onto
("modified to contain only those gate types recognized by the sequential
ATPGs").  Delay and area follow the usual genlib convention of a base
cost plus a per-extra-input increment; absolute values are arbitrary
nanoseconds/units — the experiments only ever compare delays and areas
of circuits mapped onto the *same* library, exactly as the paper only
compares cycle times within one technology (Table 7).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Circuit, NodeKind
from ..errors import SynthesisError


@dataclasses.dataclass(frozen=True)
class GateSpec:
    """Timing/area model of one gate family."""

    base_delay: float  # delay at minimum fanin (ns)
    delay_per_input: float  # added per input beyond the minimum (ns)
    base_area: float
    area_per_input: float
    max_fanin: int


_DEFAULT_SPECS: Dict[GateType, GateSpec] = {
    GateType.BUF: GateSpec(1.0, 0.0, 1.0, 0.0, 1),
    GateType.NOT: GateSpec(1.0, 0.0, 1.0, 0.0, 1),
    GateType.AND: GateSpec(2.0, 0.5, 2.0, 1.0, 4),
    GateType.OR: GateSpec(2.0, 0.5, 2.0, 1.0, 4),
    GateType.NAND: GateSpec(1.5, 0.5, 1.5, 1.0, 4),
    GateType.NOR: GateSpec(1.5, 0.5, 1.5, 1.0, 4),
    GateType.XOR: GateSpec(3.0, 1.0, 4.0, 2.0, 3),
    GateType.XNOR: GateSpec(3.0, 1.0, 4.0, 2.0, 3),
    GateType.CONST0: GateSpec(0.0, 0.0, 0.0, 0.0, 0),
    GateType.CONST1: GateSpec(0.0, 0.0, 0.0, 0.0, 0),
}

DFF_AREA = 6.0
DFF_SETUP = 0.5  # included in path delay into a register
DFF_CLOCK_TO_Q = 0.5  # included in path delay out of a register


class GateLibrary:
    """A delay/area model over the primitive gate set."""

    def __init__(self, specs: Dict[GateType, GateSpec] = None):
        self._specs = dict(_DEFAULT_SPECS)
        if specs:
            self._specs.update(specs)

    def spec(self, gate: GateType) -> GateSpec:
        try:
            return self._specs[gate]
        except KeyError:
            raise SynthesisError(f"library has no spec for {gate!r}") from None

    def delay(self, gate: GateType, fanin_count: int) -> float:
        spec = self.spec(gate)
        extra = max(0, fanin_count - max(1, gate.min_fanin))
        return spec.base_delay + extra * spec.delay_per_input

    def area(self, gate: GateType, fanin_count: int) -> float:
        spec = self.spec(gate)
        extra = max(0, fanin_count - max(1, gate.min_fanin))
        return spec.base_area + extra * spec.area_per_input

    def max_fanin(self, gate: GateType) -> int:
        return self.spec(gate).max_fanin

    # -- circuit-level metrics ------------------------------------------------

    def circuit_area(self, circuit: Circuit) -> float:
        total = 0.0
        for node in circuit.nodes():
            if node.kind is NodeKind.GATE:
                total += self.area(node.gate, len(node.fanin))
            elif node.kind is NodeKind.DFF:
                total += DFF_AREA
        return total

    def node_delay(self, circuit: Circuit, name: str) -> float:
        node = circuit.node(name)
        if node.kind is NodeKind.GATE:
            return self.delay(node.gate, len(node.fanin))
        return 0.0


DEFAULT_LIBRARY = GateLibrary()
