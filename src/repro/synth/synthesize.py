"""FSM-to-netlist synthesis pipeline (the SIS flow substitute).

Mirrors the paper's flow (§2.1):

1. **state minimization** (``stamina`` → :mod:`repro.fsm.minimize`),
2. **state assignment** (``jedi`` → :mod:`repro.fsm.encode`, minimum
   code width, three algorithm flavors),
3. **unused-code don't-cares** (``extract_seq_dc`` → cover complement),
4. **two-level minimization** per next-state bit / output bit
   (``espresso`` → :mod:`repro.logic.espresso`),
5. **multi-level restructuring + mapping** (``script.rugged`` /
   ``script.delay`` → :mod:`repro.logic.factor` driven by
   :mod:`repro.synth.scripts`),
6. optional **explicit reset line** (dk16/pma/s510/scf convention): a
   ``reset`` primary input forces the next state to the reset code.

DFFs power up in the reset-state code.  For explicit-reset circuits this
matches asserting reset on the first cycle; for the others it models the
hardware power-up reset the paper relies on ("HITEC was able to
initialize each circuit in less than 2 CPU seconds").  Every engine in
this library therefore starts from a *known* reset state, sidestepping
the initialization problem the paper deliberately avoided (§2.1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..circuit.builder import CircuitBuilder
from ..circuit.gates import ONE, ZERO, GateType
from ..circuit.graph import sweep_dead_nodes
from ..circuit.netlist import Circuit
from ..errors import SynthesisError
from ..fsm.encode import Encoding, EncodingAlgorithm, encode_fsm
from ..fsm.machine import Fsm
from ..fsm.minimize import minimize_fsm
from ..lint.gate import GateMode, gate_circuit
from ..logic.cube import Cover, Cube
from ..logic.espresso import minimize as espresso_minimize
from ..logic.factor import (
    LiteralFactory,
    extract_common_cubes,
    instantiate_extraction,
    sop_to_network,
)
from .library import DEFAULT_LIBRARY, GateLibrary
from .mapping import map_to_library
from .scripts import SynthesisScript, circuit_name

RESET_INPUT = "reset"


@dataclasses.dataclass
class SynthesisResult:
    """Everything the experiment harness needs about one synthesis run."""

    circuit: Circuit
    fsm: Fsm
    encoding: Encoding
    script: SynthesisScript
    explicit_reset: bool
    state_bit_names: List[str]  # DFF names, bit j at index j
    sop_literals: int  # two-level cost after espresso

    @property
    def name(self) -> str:
        return self.circuit.name


def synthesize(
    fsm: Fsm,
    algorithm: EncodingAlgorithm,
    script: SynthesisScript,
    explicit_reset: bool = False,
    extra_bits: int = 0,
    library: Optional[GateLibrary] = None,
    minimize_states: bool = True,
    seed: int = 0,
    lint_mode: "str | GateMode" = GateMode.WARN,
) -> SynthesisResult:
    """Run the full pipeline; returns the mapped sequential circuit.

    The circuit is named by the paper's convention (``fsm.jX.sY``).

    Every mapped netlist passes through the DRC analyzer before being
    returned (``lint_mode``: ``warn`` logs diagnostics — the default —
    ``strict`` raises :class:`repro.errors.LintError` on error-severity
    findings, ``off`` skips the gate), so defective synthesis products
    are surfaced instead of silently fed to ATPG.
    """
    library = library or DEFAULT_LIBRARY
    if minimize_states:
        fsm = minimize_fsm(fsm).fsm
    encoding = encode_fsm(fsm, algorithm, extra_bits=extra_bits, seed=seed)
    name = circuit_name(fsm.name, algorithm.value, script.suffix)

    on_covers, dc_covers = build_covers(fsm, encoding)
    minimized: List[Cover] = []
    sop_literals = 0
    for on, dc in zip(on_covers, dc_covers):
        result = espresso_minimize(on, dc, max_passes=script.espresso_passes)
        minimized.append(result.cover)
        sop_literals += result.literals

    circuit = _instantiate(
        fsm, encoding, script, minimized, explicit_reset, name
    )
    circuit = map_to_library(circuit, library)
    sweep_dead_nodes(circuit)
    circuit.check()
    # Post-synthesis DRC gate (not recorded in the harness ledger; the
    # pre-ATPG gate owns the per-run diagnostic record).
    gate_circuit(
        circuit, mode=lint_mode, stage=f"post-synthesis:{name}", ledger=None
    )
    return SynthesisResult(
        circuit=circuit,
        fsm=fsm,
        encoding=encoding,
        script=script,
        explicit_reset=explicit_reset,
        state_bit_names=[f"q{j}" for j in range(encoding.width)],
        sop_literals=sop_literals,
    )


def build_covers(
    fsm: Fsm, encoding: Encoding
) -> Tuple[List[Cover], List[Cover]]:
    """Two-level ON/DC covers for every function the circuit computes.

    Function order: next-state bits 0..w-1, then output bits 0..po-1.
    Cover input space: FSM inputs at columns 0..ni-1, present-state bits
    at columns ni..ni+w-1 (little-endian code bits).
    """
    ni = fsm.num_inputs
    width = ni + encoding.width
    num_functions = encoding.width + fsm.num_outputs
    on = [Cover(width) for _ in range(num_functions)]
    dc = [Cover(width) for _ in range(num_functions)]

    # Unused-code don't-cares (the extract_seq_dc analog): complement of
    # the used-code set, widened over the input columns.
    used = Cover(encoding.width)
    for state in fsm.states:
        used.add(Cube.minterm(encoding.width, encoding.codes[state]))
    unused = used.complement()
    for cube in unused.cubes:
        widened = Cube(
            width=width, mask=cube.mask << ni, value=cube.value << ni
        )
        for function_dc in dc:
            function_dc.add(widened)

    for t in fsm.transitions:
        row = _transition_cube(t.inputs, encoding.codes[t.src], ni, encoding.width)
        dst_code = encoding.codes[t.dst]
        for j in range(encoding.width):
            if (dst_code >> j) & 1:
                on[j].add(row)
        for k, char in enumerate(t.outputs):
            if char == "1":
                on[encoding.width + k].add(row)
            elif char == "-":
                dc[encoding.width + k].add(row)
    return on, dc


def _transition_cube(
    input_cube: str, src_code: int, ni: int, state_width: int
) -> Cube:
    mask = 0
    value = 0
    for i, char in enumerate(input_cube):
        if char == "0":
            mask |= 1 << i
        elif char == "1":
            mask |= 1 << i
            value |= 1 << i
    for j in range(state_width):
        bit = 1 << (ni + j)
        mask |= bit
        if (src_code >> j) & 1:
            value |= bit
    return Cube(width=ni + state_width, mask=mask, value=value)


def _instantiate(
    fsm: Fsm,
    encoding: Encoding,
    script: SynthesisScript,
    covers: List[Cover],
    explicit_reset: bool,
    name: str,
) -> Circuit:
    """Build the gate-level netlist from the minimized covers."""
    builder = CircuitBuilder(name)
    input_names = [builder.input(f"x{i}") for i in range(fsm.num_inputs)]
    reset_name = builder.input(RESET_INPUT) if explicit_reset else None
    state_names = [f"q{j}" for j in range(encoding.width)]
    # DFF output nodes must exist before the logic that reads them; we
    # create them with placeholder D inputs and rewire at the end.
    placeholder = builder.const0(name="_tie0")
    reset_code = encoding.codes[fsm.reset_state]
    for j, q_name in enumerate(state_names):
        init = ONE if (reset_code >> j) & 1 else ZERO
        builder.dff(placeholder, init=init, name=q_name)

    literal_space = input_names + state_names
    function_names = [f"_ns{j}" for j in range(encoding.width)] + [
        f"z{k}" for k in range(fsm.num_outputs)
    ]

    if script.extract_common_cubes:
        extraction = extract_common_cubes(covers)
        outputs = instantiate_extraction(
            builder,
            extraction,
            literal_space,
            script.style,
            output_names=function_names,
        )
    else:
        literals = LiteralFactory(
            builder,
            literal_space,
            share=script.style.share_literal_inverters,
        )
        outputs = [
            sop_to_network(
                builder,
                cover,
                literal_space,
                script.style,
                output_name=fn_name,
                literals=literals,
            )
            for cover, fn_name in zip(covers, function_names)
        ]

    ns_nodes = outputs[: encoding.width]
    po_nodes = outputs[encoding.width :]

    # Explicit reset line: force the next state to the reset code while
    # reset is asserted (one AND/OR per state bit — the mux simplifies
    # because the forced value is a constant).
    circuit = builder.build(check=False)
    for j, q_name in enumerate(state_names):
        d_node = ns_nodes[j]
        if explicit_reset:
            if (reset_code >> j) & 1:
                d_node = builder.or_(reset_name, d_node, name=f"_d{j}")
            else:
                reset_n = _shared_reset_inverter(builder, reset_name)
                d_node = builder.and_(reset_n, d_node, name=f"_d{j}")
        circuit.replace_fanin(q_name, [d_node])

    for po in po_nodes:
        circuit.add_output(po)
    return circuit


_RESET_INV_CACHE_ATTR = "_reset_inverter_node"


def _shared_reset_inverter(builder: CircuitBuilder, reset_name: str) -> str:
    cached = getattr(builder, _RESET_INV_CACHE_ATTR, None)
    if cached is None:
        cached = builder.not_(reset_name)
        setattr(builder, _RESET_INV_CACHE_ATTR, cached)
    return cached


def behavioral_check(
    result: SynthesisResult,
    num_sequences: int = 20,
    sequence_length: int = 30,
    seed: int = 99,
) -> None:
    """Simulate the circuit against the FSM on random input sequences.

    Raises :class:`SynthesisError` on the first mismatch of a specified
    output bit or of the encoded next state.  Used by tests and available
    to callers as a paranoia switch.
    """
    from .._util import make_rng
    from ..sim.logicsim import TernarySimulator

    fsm = result.fsm
    encoding = result.encoding
    simulator = TernarySimulator(result.circuit)
    rng = make_rng(seed)

    for _ in range(num_sequences):
        state = fsm.reset_state
        circuit_state = simulator.initial_state()
        for _ in range(sequence_length):
            assignment = rng.randrange(1 << fsm.num_inputs)
            vector = [(assignment >> i) & 1 for i in range(fsm.num_inputs)]
            if result.explicit_reset:
                vector = vector + [0]  # reset deasserted
            step = fsm.step(state, assignment)
            po_values, circuit_state = simulator.step(vector, circuit_state)
            if step is None:
                break  # unspecified behavior: nothing to compare
            state, expected_outputs = step
            for k, char in enumerate(expected_outputs):
                if char == "-":
                    continue
                expected = ONE if char == "1" else ZERO
                if po_values[k] != expected:
                    raise SynthesisError(
                        f"{result.name}: output z{k} mismatch "
                        f"(expected {char}, got {po_values[k]})"
                    )
            expected_code = encoding.codes[state]
            for j in range(encoding.width):
                expected_bit = ONE if (expected_code >> j) & 1 else ZERO
                if circuit_state[j] != expected_bit:
                    raise SynthesisError(
                        f"{result.name}: state bit q{j} mismatch entering "
                        f"state {state!r}"
                    )
