"""Synthesis recipes: the ``script.rugged`` / ``script.delay`` substitutes.

The paper synthesizes every FSM with one of two SIS scripts, producing
differently structured logic for the same function:

* ``script.rugged`` (``.sr``) — area-oriented: aggressive sharing via
  algebraic extraction, chain-style gate decomposition;
* ``script.delay`` (``.sd``)  — delay-oriented: balanced gate trees, no
  cross-function extraction, sharing limited to input inverters.

A :class:`SynthesisScript` bundles the knobs the pipeline consumes.  The
circuit naming convention follows the paper: ``<fsm>.<j*>.<s*>`` where
``.ji``/``.jo``/``.jc`` is the encoding algorithm and ``.sd``/``.sr``
the script.
"""

from __future__ import annotations

import dataclasses

from ..errors import SynthesisError
from ..logic.factor import DecompositionStyle


@dataclasses.dataclass(frozen=True)
class SynthesisScript:
    """One synthesis recipe."""

    name: str  # "rugged" or "delay"
    suffix: str  # ".sr" or ".sd"
    style: DecompositionStyle
    extract_common_cubes: bool
    espresso_passes: int = 8


SCRIPT_RUGGED = SynthesisScript(
    name="rugged",
    suffix="sr",
    style=DecompositionStyle.area(),
    extract_common_cubes=True,
)

SCRIPT_DELAY = SynthesisScript(
    name="delay",
    suffix="sd",
    style=DecompositionStyle.delay(),
    extract_common_cubes=False,
)

_SCRIPTS = {
    "rugged": SCRIPT_RUGGED,
    "delay": SCRIPT_DELAY,
    "sr": SCRIPT_RUGGED,
    "sd": SCRIPT_DELAY,
}


def script_by_name(name: str) -> SynthesisScript:
    """Look up a script by full name or paper suffix (``sr``/``sd``)."""
    try:
        return _SCRIPTS[name.lstrip(".")]
    except KeyError:
        raise SynthesisError(
            f"unknown synthesis script {name!r}; "
            f"known: rugged (.sr), delay (.sd)"
        ) from None


def circuit_name(fsm_name: str, encoding_suffix: str, script_suffix: str) -> str:
    """The paper's circuit naming: e.g. ``s510.jo.sr``."""
    return f"{fsm_name}.{encoding_suffix.lstrip('.')}.{script_suffix.lstrip('.')}"
