"""Technology mapping: legalize a netlist against a gate library.

The decomposition passes already target small gates, but transformations
(retiming rebuilds, hand-built circuits, imported BLIF) can carry gates
wider than the library allows.  :func:`map_to_library` splits any
over-wide AND/OR/NAND/NOR/XOR/XNOR into a legal tree, preserving
function, and leaves everything else untouched.

Also home to :func:`circuit_cost`, the (area, delay) summary used by the
experiment logs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from .._util import NameAllocator
from ..circuit.gates import GateType
from ..circuit.netlist import Circuit, NodeKind
from ..errors import SynthesisError
from .library import GateLibrary

# How to split a wide gate: (inner-tree gate, root gate, invert-chain).
# AND -> AND tree; NAND -> AND tree with NAND root; XOR -> XOR tree; etc.
_SPLIT_PLAN: Dict[GateType, Tuple[GateType, GateType]] = {
    GateType.AND: (GateType.AND, GateType.AND),
    GateType.OR: (GateType.OR, GateType.OR),
    GateType.NAND: (GateType.AND, GateType.NAND),
    GateType.NOR: (GateType.OR, GateType.NOR),
    GateType.XOR: (GateType.XOR, GateType.XOR),
    GateType.XNOR: (GateType.XOR, GateType.XNOR),
}


def map_to_library(circuit: Circuit, library: GateLibrary) -> Circuit:
    """Return a copy of ``circuit`` with every gate within the library's
    fanin bound (wide gates become balanced trees of the same family)."""
    mapped = circuit.copy()
    names = NameAllocator(mapped.node_names())
    # Collect first: we mutate while iterating otherwise.
    wide = [
        node.name
        for node in mapped.nodes()
        if node.kind is NodeKind.GATE
        and node.gate in _SPLIT_PLAN
        and len(node.fanin) > library.max_fanin(node.gate)
    ]
    for name in wide:
        _split_gate(mapped, names, name, library)
    mapped.check()
    return mapped


def _split_gate(
    circuit: Circuit, names: NameAllocator, name: str, library: GateLibrary
) -> None:
    node = circuit.node(name)
    inner_gate, root_gate = _SPLIT_PLAN[node.gate]
    limit = library.max_fanin(root_gate)
    if limit < 2:
        raise SynthesisError(
            f"library limits {root_gate.value} to fanin {limit}; cannot map"
        )
    operands: List[str] = list(node.fanin)
    while len(operands) > limit:
        grouped: List[str] = []
        for start in range(0, len(operands), limit):
            group = operands[start : start + limit]
            if len(group) == 1:
                grouped.append(group[0])
            else:
                inner_name = names.fresh(f"{name}_m")
                circuit.add_gate(inner_name, inner_gate, group)
                grouped.append(inner_name)
        operands = grouped
    # Retype the root: replace the original node's gate and fanin by
    # rebuilding it (Node fields are mutable through the circuit API).
    root = circuit.node(name)
    root.gate = root_gate
    circuit.replace_fanin(name, operands)


@dataclasses.dataclass
class CircuitCost:
    """Area/size summary of a mapped circuit."""

    area: float
    gates: int
    dffs: int
    literals: int  # total gate fanin, the structural literal count


def circuit_cost(circuit: Circuit, library: GateLibrary) -> CircuitCost:
    literals = sum(
        len(node.fanin)
        for node in circuit.nodes()
        if node.kind is NodeKind.GATE
    )
    return CircuitCost(
        area=library.circuit_area(circuit),
        gates=circuit.num_gates(),
        dffs=circuit.num_dffs(),
        literals=literals,
    )
