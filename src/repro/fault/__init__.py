"""Stuck-at fault model, static fault analysis (equivalence +
dominance/checkpoint collapsing, provable-untestable pruning), and
word-parallel sequential fault simulation (PROOFS substitute)."""

from .model import (
    CoverageSummary,
    Fault,
    FaultStatus,
    full_fault_list,
    summarize,
)
from .collapse import CollapseReport, collapse_faults
from .simulator import FaultSimReport, FaultSimulator, TestSequence
from .analysis import (
    ExpandedResult,
    FaultAnalysis,
    analyze_faults,
    analyze_faults_cached,
    clear_analysis_cache,
    expand_result,
)

__all__ = [
    "CollapseReport",
    "CoverageSummary",
    "ExpandedResult",
    "Fault",
    "FaultAnalysis",
    "FaultSimReport",
    "FaultSimulator",
    "FaultStatus",
    "TestSequence",
    "analyze_faults",
    "analyze_faults_cached",
    "clear_analysis_cache",
    "collapse_faults",
    "expand_result",
    "full_fault_list",
    "summarize",
]
