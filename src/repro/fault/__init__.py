"""Stuck-at fault model, equivalence collapsing, and word-parallel
sequential fault simulation (PROOFS substitute)."""

from .model import (
    CoverageSummary,
    Fault,
    FaultStatus,
    full_fault_list,
    summarize,
)
from .collapse import CollapseReport, collapse_faults
from .simulator import FaultSimReport, FaultSimulator, TestSequence

__all__ = [
    "CollapseReport",
    "CoverageSummary",
    "Fault",
    "FaultSimReport",
    "FaultSimulator",
    "FaultStatus",
    "TestSequence",
    "collapse_faults",
    "full_fault_list",
    "summarize",
]
