"""Static fault analysis: what can be decided before any ATPG runs.

The analyzer turns the full stem-fault universe of a circuit into a
reduced deterministic target list plus enough bookkeeping to expand any
result back over *all* faults:

1. **equivalence collapsing** — the union-find of
   :mod:`repro.fault.collapse`; exact in both directions (equivalent
   faults share every test, so a representative's outcome transfers to
   its whole class, detection index included);
2. **provable-untestable pruning** — constant-net (ternary fixpoint)
   and unobservability proofs (:mod:`.untestable`) discharge whole
   classes with state ``untestable`` at zero search cost;
3. **dominance / checkpoint reduction** (level
   ``equiv+dom+checkpoint``) — fanout-free-region dominance
   (:mod:`.dominance`) removes gate-output classes whose excitation and
   propagation conditions are subsumed by a kept interior-line fault;
   transitively the kept targets bottom out at the checkpoints (PIs,
   fanout stems, DFF outputs).

Dominance is a *targeting* optimization only: dropped classes are never
assumed detected — :mod:`.expand` fault-simulates them against the
emitted test set, so coverage/detection reports over the full universe
stay exact (see the sequential caveat in :mod:`.dominance`).

``analyze_faults_cached`` memoizes per circuit object so the harness
runs the analysis once per circuit per level; the cost and yield land
in ``collapse.*`` counters and a ``collapse.analyze`` trace span.
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Dict, FrozenSet, List, Optional, Tuple

from ...circuit.netlist import Circuit
from ...errors import FaultError
from ...obs import Observability
from ..collapse import CollapseReport, collapse_faults
from ..model import Fault, full_fault_list
from .dominance import checkpoint_nodes, dominance_drops, fanout_free_regions
from .untestable import untestable_faults

#: Equivalence classes only (plus untestable pruning).
LEVEL_EQUIV = "equiv"
#: Equivalence + dominance/checkpoint reduction (the default).
LEVEL_FULL = "equiv+dom+checkpoint"
LEVELS = (LEVEL_EQUIV, LEVEL_FULL)


@dataclasses.dataclass
class FaultAnalysis:
    """Everything the static pass decided about one circuit's faults."""

    circuit_name: str
    level: str
    #: The full universe, in the canonical sorted order of
    #: :func:`repro.fault.model.full_fault_list`.
    all_faults: List[Fault]
    #: Every fault -> its equivalence-class representative.
    class_of: Dict[Fault, Fault]
    #: Equivalence representatives (one per class, universe order).
    equiv_representatives: List[Fault]
    #: The reduced ATPG target list (equiv reps minus untestable and
    #: dominance-dropped classes), in universe order.
    representatives: List[Fault]
    #: Untestable class representatives -> one-line proof.
    untestable: Dict[Fault, str]
    #: Dominance-dropped class representatives -> kept witness fault.
    dominated: Dict[Fault, Fault]
    #: PIs + fanout stems + DFF outputs.
    checkpoints: FrozenSet[str]

    @property
    def total_faults(self) -> int:
        return len(self.all_faults)

    @property
    def collapse_ratio(self) -> float:
        """Targets / universe (1.0 = nothing collapsed)."""
        if not self.all_faults:
            return 1.0
        return len(self.representatives) / len(self.all_faults)

    @property
    def checkpoint_ratio(self) -> float:
        """Checkpoints / fault sites (nodes)."""
        sites = len(self.all_faults) // 2
        if sites == 0:
            return 1.0
        return len(self.checkpoints) / sites

    def members_of(self, representative: Fault) -> List[Fault]:
        """All universe faults in one equivalence class."""
        return [
            fault
            for fault in self.all_faults
            if self.class_of[fault] == representative
        ]

    def expand_detected(
        self, detected_by_rep: Dict[Fault, int]
    ) -> Tuple[Dict[Fault, int], List[Fault]]:
        """Lift per-representative detection over the full universe.

        Returns ``(detected, undetected)`` in universe order; a class
        member inherits its representative's first-detecting sequence
        index exactly (equivalent faults share every test).
        """
        detected: Dict[Fault, int] = {}
        undetected: List[Fault] = []
        for fault in self.all_faults:
            rep = self.class_of[fault]
            if rep in detected_by_rep:
                detected[fault] = detected_by_rep[rep]
            else:
                undetected.append(fault)
        return detected, undetected

    def counters(self) -> Dict[str, int]:
        """The deterministic ``collapse.*`` counter block."""
        return {
            "collapse.faults_total": len(self.all_faults),
            "collapse.equiv_classes": len(self.equiv_representatives),
            "collapse.untestable_classes": len(self.untestable),
            "collapse.dominated_classes": len(self.dominated),
            "collapse.representatives": len(self.representatives),
            "collapse.checkpoints": len(self.checkpoints),
        }


def analyze_faults(
    circuit: Circuit,
    level: str = LEVEL_FULL,
    obs: Optional[Observability] = None,
) -> FaultAnalysis:
    """Run the full static pipeline over one circuit."""
    if level not in LEVELS:
        raise FaultError(
            f"unknown collapse level {level!r}; expected one of {LEVELS}"
        )
    obs = obs if obs is not None else Observability()
    with obs.trace.span(
        "collapse.analyze", circuit=circuit.name, level=level
    ):
        equiv: CollapseReport = collapse_faults(circuit)
        untestable_classes: Dict[Fault, str] = {}
        for fault, reason in untestable_faults(circuit).items():
            rep = equiv.class_of[fault]
            # Equivalent faults share every test: one member's empty
            # test set empties the whole class.
            untestable_classes.setdefault(rep, reason)
        dominated: Dict[Fault, Fault] = {}
        if level == LEVEL_FULL:
            for dropped, witness in dominance_drops(circuit).items():
                rep = equiv.class_of[dropped]
                if rep in untestable_classes:
                    continue  # already pruned outright
                if equiv.class_of[witness] == rep:
                    continue  # witness collapsed into the same class
                dominated.setdefault(rep, witness)
        representatives = [
            rep
            for rep in equiv.representatives
            if rep not in untestable_classes and rep not in dominated
        ]
        analysis = FaultAnalysis(
            circuit_name=circuit.name,
            level=level,
            all_faults=full_fault_list(circuit),
            class_of=equiv.class_of,
            equiv_representatives=list(equiv.representatives),
            representatives=representatives,
            untestable=untestable_classes,
            dominated=dominated,
            checkpoints=checkpoint_nodes(circuit),
        )
    for key, value in analysis.counters().items():
        obs.metrics.counter(key, circuit=circuit.name).inc(value)
    return analysis


# One analysis per live circuit object per level.  Keyed weakly by the
# circuit itself (identity), so a re-synthesized circuit never reuses a
# stale analysis and dropped circuits free their entry.
_CACHE: "weakref.WeakKeyDictionary[Circuit, Dict[str, FaultAnalysis]]" = (
    weakref.WeakKeyDictionary()
)


def analyze_faults_cached(
    circuit: Circuit,
    level: str = LEVEL_FULL,
    obs: Optional[Observability] = None,
) -> FaultAnalysis:
    """Suite-level memoized :func:`analyze_faults`.

    Every harness consumer (ATPG tables, Figure 3, expansion) shares
    one analysis per circuit per level.  A cache hit re-emits the same
    ``collapse.analyze`` span and ``collapse.*`` counters a fresh
    computation would: whether *this* process computed the analysis is
    an execution accident (worker processes have cold caches), and
    per-task observability must be byte-identical at every ``--jobs``
    level.
    """
    per_circuit = _CACHE.get(circuit)
    if per_circuit is not None and level in per_circuit:
        analysis = per_circuit[level]
        if obs is not None:
            with obs.trace.span(
                "collapse.analyze", circuit=circuit.name, level=level
            ):
                pass
            for key, value in analysis.counters().items():
                obs.metrics.counter(key, circuit=circuit.name).inc(value)
        return analysis
    analysis = analyze_faults(circuit, level=level, obs=obs)
    if per_circuit is None:
        per_circuit = {}
        _CACHE[circuit] = per_circuit
    per_circuit[level] = analysis
    return analysis


def clear_analysis_cache() -> None:
    """Drop all memoized analyses (tests and suite cache resets)."""
    _CACHE.clear()


from .expand import ExpandedResult, expand_result  # noqa: E402  (cycle-free tail import)

__all__ = [
    "LEVELS",
    "LEVEL_EQUIV",
    "LEVEL_FULL",
    "ExpandedResult",
    "FaultAnalysis",
    "analyze_faults",
    "analyze_faults_cached",
    "checkpoint_nodes",
    "clear_analysis_cache",
    "dominance_drops",
    "expand_result",
    "fanout_free_regions",
    "untestable_faults",
]
