"""Structural fault dominance via fanout-free-region traversal.

A fault ``g`` *dominates* a fault ``f`` when every test that detects
``f`` also detects ``g``; the dominating fault can then be removed from
the target list as long as ``f`` stays on it.  At stem granularity the
classical opportunity sits on every AND/OR/NAND/NOR gate with a
fanout-free, non-observable fanin ``u`` inside the same fanout-free
region: a test for ``u``'s non-controlling-side fault (``u/sa1`` for
AND/NAND, ``u/sa0`` for OR/NOR) must drive ``u`` to the controlling
value, hold every sibling input non-controlling, and propagate the
discrepancy through the gate — which is exactly the excitation and
single-frame propagation condition of the gate-output fault on the
non-controlled side (``g/sa1`` for AND, ``g/sa0`` for NAND, ...).

Chained over a region's interior lines, the kept witnesses bottom out
at the region inputs — primary inputs, fanout stems and DFF outputs —
which is the **checkpoint theorem**: those sites alone carry a
sufficient target list (XOR-family gates have no controlling value and
keep their output faults).

Sequential caveat: the set-inclusion argument above is exact per time
frame but a stuck line is faulty in *every* frame, and the dominating
fault's extra discrepancies can interfere through the state registers
(self-masking).  The analyzer therefore uses dominance only to choose
*ATPG targets*; it never infers a dropped fault's detection from its
witness.  Dropped faults are fault-simulated against the emitted test
set (:mod:`repro.fault.analysis.expand`), so reported coverage is
exact regardless.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ...circuit.gates import ONE, X
from ...circuit.graph import topological_order
from ...circuit.netlist import Circuit, NodeKind
from ..model import Fault


def checkpoint_nodes(circuit: Circuit) -> FrozenSet[str]:
    """The circuit's checkpoints: PIs, fanout stems and DFF outputs.

    A stem is any line observed at more than one place (two or more
    readers, or one reader plus a primary-output tap).  DFF outputs are
    the sequential generalization of the combinational theorem's
    primary inputs: each combinational block sees them as pseudo-PIs.
    """
    fanouts = circuit.fanouts()
    points = set(circuit.inputs)
    points.update(dff.name for dff in circuit.dffs())
    for name, readers in fanouts.items():
        if len(readers) + int(circuit.is_output(name)) > 1:
            points.add(name)
    return frozenset(points)


def fanout_free_regions(circuit: Circuit) -> Dict[str, str]:
    """Map every node to the head (output line) of its fanout-free region.

    A node heads its own region when its line branches (fanout stem or
    PO tap), feeds a register (sequential boundary), or drives nothing;
    otherwise it belongs to the region of its unique gate reader.  The
    reverse-topological sweep is the FFR traversal both the dominance
    pass and the report use.
    """
    fanouts = circuit.fanouts()
    heads: Dict[str, str] = {}
    for name in reversed(topological_order(circuit)):
        readers = fanouts[name]
        if len(readers) + int(circuit.is_output(name)) != 1 or not readers:
            heads[name] = name
            continue
        reader = readers[0]
        if circuit.node(reader).kind is not NodeKind.GATE:
            heads[name] = name  # feeds a DFF: sequential boundary
        else:
            heads[name] = heads[reader]
    return heads


def dominance_drops(circuit: Circuit) -> Dict[Fault, Fault]:
    """Gate-output faults droppable by dominance, with their witnesses.

    Returns ``{dropped gate-output fault: kept witness input fault}``.
    For each AND/OR/NAND/NOR gate whose fanin includes a fanout-free,
    non-PO line ``u`` (an interior line of the gate's fanout-free
    region), the output fault on the non-controlled side dominates
    ``u``'s non-controlling-side fault and leaves the target list.  The
    first eligible fanin (declaration order) is recorded as witness, so
    the result is deterministic.
    """
    fanouts = circuit.fanouts()
    drops: Dict[Fault, Fault] = {}
    for node in circuit.nodes():
        if node.kind is not NodeKind.GATE:
            continue
        control = node.gate.controlling_value()
        if control == X or not node.fanin:
            continue
        dropped = Fault(node.name, ONE - node.gate.controlled_value())
        for driver in node.fanin:
            if len(fanouts[driver]) == 1 and not circuit.is_output(driver):
                drops[dropped] = Fault(driver, ONE - control)
                break
    return drops
