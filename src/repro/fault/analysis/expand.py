"""Expand a reduced-target engine run back over the full fault universe.

The engines only ever see the analyzer's reduced representative list.
Tables and coverage reports, however, are specified over *all* faults —
and for the dominance level that gap cannot be closed by inference
(sequential self-masking, see :mod:`.dominance`).  ``expand_result``
closes it exactly:

* untestable classes get state ``untestable`` (proof already in hand);
* classes the engine targeted copy their representative's status and
  detecting-sequence index (equivalence is exact);
* every remaining class — dominance-dropped or sampled out of the
  engine's target list — is fault-simulated against the engine's own
  emitted test set, so its detected/untested status is *measured*, not
  assumed.

The expansion simulation runs on a private metrics registry and is
re-reported as ``sim.expansion_events``: it is bookkeeping cost, not
engine search effort, and must not inflate the engine's ``sim.events``
perf counter.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ...circuit.netlist import Circuit
from ...obs import MetricsRegistry, Observability
from ..model import CoverageSummary, Fault, FaultStatus, summarize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...atpg.result import AtpgResult, Checkpoint, TestSet
    from . import FaultAnalysis


@dataclasses.dataclass
class ExpandedResult:
    """An :class:`~repro.atpg.result.AtpgResult` lifted to all faults.

    Duck-types the engine result everywhere the harness reads one
    (tables, ledgers, Figure 3 traversal reports): same attributes, but
    ``statuses``/``summary()``/coverage numbers range over the full
    fault universe and ``counters()`` adds the ``cover.*`` block (the
    full-universe outcome counters the perf gate now guards) plus the
    analyzer's ``collapse.*`` yield.
    """

    engine_result: "AtpgResult"
    analysis: "FaultAnalysis"
    #: Full-universe statuses, in canonical fault order.
    statuses: Dict[Fault, FaultStatus]
    #: Machine-steps spent post-simulating untargeted classes.
    expansion_sim_events: int = 0
    #: The engine's lifecycle records annotated with selection
    #: provenance (collapse level + equivalence-class size); see
    #: repro.obs.coverage and :func:`expand_result`.
    fault_records: List[Dict[str, object]] = dataclasses.field(
        default_factory=list
    )

    # -- AtpgResult surface, delegated -----------------------------------------

    @property
    def circuit_name(self) -> str:
        return self.engine_result.circuit_name

    @property
    def engine(self) -> str:
        return self.engine_result.engine

    @property
    def test_set(self) -> "TestSet":
        return self.engine_result.test_set

    @property
    def cpu_seconds(self) -> float:
        return self.engine_result.cpu_seconds

    @property
    def checkpoints(self) -> List["Checkpoint"]:
        return self.engine_result.checkpoints

    @property
    def states_traversed(self) -> Set[Tuple[int, ...]]:
        return self.engine_result.states_traversed

    @property
    def states_examined(self) -> Set[Tuple[int, ...]]:
        return self.engine_result.states_examined

    @property
    def backtracks(self) -> int:
        return self.engine_result.backtracks

    @property
    def frames_expanded(self) -> int:
        return self.engine_result.frames_expanded

    @property
    def sim_events(self) -> int:
        return self.engine_result.sim_events

    @property
    def search_counters(self) -> Dict[str, int]:
        return self.engine_result.search_counters

    # -- full-universe accounting ----------------------------------------------

    def summary(self) -> CoverageSummary:
        return summarize(self.statuses.values())

    @property
    def fault_coverage(self) -> float:
        return self.summary().fault_coverage

    @property
    def fault_efficiency(self) -> float:
        return self.summary().fault_efficiency

    def counters(self) -> Dict[str, float]:
        """Engine counters + full-universe ``cover.*`` + ``collapse.*``.

        ``atpg.*`` keys keep their reduced-list semantics (engine search
        effort and engine-level outcomes); ``cover.*`` is the expanded
        truth the tables print and the perf gate treats as
        lower-is-worse.
        """
        counters = self.engine_result.counters()
        summary = self.summary()
        counters.update(
            {
                "cover.faults_total": summary.total,
                "cover.faults_detected": summary.detected,
                "cover.faults_redundant": summary.redundant,
                "cover.faults_aborted": summary.aborted,
                "cover.faults_untestable": summary.untestable,
                "sim.expansion_events": self.expansion_sim_events,
            }
        )
        counters.update(self.analysis.counters())
        return counters

    def __str__(self) -> str:
        return (
            f"{self.engine} on {self.circuit_name} (expanded over "
            f"{len(self.statuses)} faults, "
            f"{len(self.analysis.representatives)} targets): "
            f"{self.summary()}"
        )


def expand_result(
    engine_result: "AtpgResult",
    analysis: "FaultAnalysis",
    circuit: Circuit,
    obs: Optional[Observability] = None,
) -> ExpandedResult:
    """Lift ``engine_result`` over ``analysis``'s full fault universe."""
    from ..simulator import FaultSimulator  # local: avoid import cycle

    targeted = engine_result.statuses
    untargeted = [
        rep
        for rep in analysis.equiv_representatives
        if rep not in targeted and rep not in analysis.untestable
    ]
    post_detected: Dict[Fault, int] = {}
    expansion_events = 0
    if untargeted and engine_result.test_set.sequences:
        private = MetricsRegistry()
        simulator = FaultSimulator(
            circuit, faults=untargeted, metrics=private
        )
        report = simulator.run(engine_result.test_set.sequences)
        post_detected = report.detected
        expansion_events = int(
            sum(
                value
                for key, value in private.dump().items()
                if key.startswith("sim.events")
            )
        )
    statuses: Dict[Fault, FaultStatus] = {}
    for fault in analysis.all_faults:
        rep = analysis.class_of[fault]
        if rep in analysis.untestable:
            statuses[fault] = FaultStatus(fault, state="untestable")
        elif rep in targeted:
            origin = targeted[rep]
            statuses[fault] = FaultStatus(
                fault, state=origin.state, detected_by=origin.detected_by
            )
        elif rep in post_detected:
            statuses[fault] = FaultStatus(
                fault, state="detected", detected_by=post_detected[rep]
            )
        else:
            statuses[fault] = FaultStatus(fault)
    if obs is not None and expansion_events:
        obs.metrics.counter(
            "sim.expansion_events", circuit=circuit.name
        ).inc(expansion_events)
    # Selection provenance for the lifecycle records: which collapse
    # level produced the target list and how many universe faults each
    # targeted representative stands for.  Class sizes come from one
    # Counter pass over class_of (members_of scans the universe per
    # call — O(n^2) over a run's records).
    class_sizes = Counter(
        str(rep) for rep in analysis.class_of.values()
    )
    fault_records = [
        dict(
            record,
            collapse_level=analysis.level,
            class_size=class_sizes.get(str(record.get("fault")), 1),
        )
        for record in engine_result.fault_records
    ]
    return ExpandedResult(
        engine_result=engine_result,
        analysis=analysis,
        statuses=statuses,
        expansion_sim_events=expansion_events,
        fault_records=fault_records,
    )
