"""Provable-untestable fault pruning (static, sound, search-free).

Two proofs discharge a stuck-at fault without spending a single search
frame, both conservative (a missing proof never means testable):

* **unexcitable** — the ternary-fixpoint constant analysis shared with
  the DRC rules (:mod:`repro.analysis.ternary`) shows the line provably
  holds value ``v`` in every reachable cycle under every input
  sequence; the fault ``line/sa-v`` then forces the value the line
  already has, the faulty machine is the good machine, and no test can
  distinguish them.
* **unobservable** — the line has no structural fanout path (through
  any number of registers) to any primary output; a fault effect can
  only travel along fanout, so the primary outputs compute identical
  values in the good and faulty machines.

Deliberately *not* implemented: "a constant side input blocks every
propagation path" style arguments.  Under reconvergence the side
input's constancy can itself depend on the fault site, so that family
of proofs is unsound without a per-fault faulty-machine fixpoint.
"""

from __future__ import annotations

from typing import Dict

from ...analysis.ternary import ternary_fixpoint
from ...circuit.gates import ONE, X, ZERO, ternary_to_char
from ...circuit.graph import transitive_fanin
from ...circuit.netlist import Circuit
from ..model import Fault


def untestable_faults(circuit: Circuit) -> Dict[Fault, str]:
    """Map each provably untestable fault to its one-line proof."""
    proofs: Dict[Fault, str] = {}
    po_cone = transitive_fanin(
        circuit, circuit.outputs, through_dffs=True
    )
    fixpoint = ternary_fixpoint(circuit)
    for node in circuit.nodes():
        name = node.name
        if name not in po_cone:
            reason = (
                "unobservable: no structural path to any primary output"
            )
            proofs[Fault(name, ZERO)] = reason
            proofs[Fault(name, ONE)] = reason
            continue
        if fixpoint is None:
            continue
        value = fixpoint[0][name]
        if value != X:
            proofs[Fault(name, value)] = (
                f"unexcitable: line provably holds "
                f"{ternary_to_char(value)} in every reachable cycle"
            )
    return proofs
