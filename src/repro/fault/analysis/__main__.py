"""CLI: ``python -m repro.fault.analysis report [options]``.

Prints the static fault-analysis yield per circuit — fault universe,
equivalence classes, provably untestable classes, dominance-dropped
classes, final target list and checkpoint count — at the requested
collapse level, alongside the equivalence-only target count for
comparison.  CI attaches this report to the profiled smoke run so
collapse regressions are visible without rerunning anything.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import LEVELS, LEVEL_EQUIV, LEVEL_FULL, analyze_faults


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fault.analysis",
        description="Static fault-analysis reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="per-circuit collapse/untestable yield table"
    )
    report.add_argument(
        "--circuits",
        default=None,
        metavar="LIST",
        help="comma-separated paper circuit names "
        "(default: the full Table 2 suite)",
    )
    report.add_argument(
        "--level",
        default=LEVEL_FULL,
        choices=LEVELS,
        help=f"collapse level (default: {LEVEL_FULL})",
    )
    report.add_argument(
        "--retimed",
        action="store_true",
        help="also analyze each circuit's retimed sibling",
    )
    report.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    return parser


def render_report(
    circuit_names: List[str], level: str, retimed: bool = False
) -> str:
    from ...harness.suite import build_pair, synthesize_named

    header = (
        f"{'circuit':16s} {'nodes':>6} {'faults':>7} {'equiv':>6} "
        f"{'untest':>7} {'dom':>6} {'targets':>8} {'ratio':>6} "
        f"{'ckpts':>6} {'ckpt-ratio':>10}"
    )
    lines = [
        f"Static fault analysis (level: {level})",
        header,
        "-" * len(header),
    ]
    for name in circuit_names:
        if retimed:
            pair = build_pair(name)
            variants = [
                (name, pair.original_circuit),
                (f"{name}.re", pair.retimed_circuit),
            ]
        else:
            variants = [(name, synthesize_named(name).circuit)]
        for label, circuit in variants:
            analysis = analyze_faults(circuit, level=level)
            equiv_only = analysis.equiv_representatives
            lines.append(
                f"{label:16s} {len(list(circuit.nodes())):>6} "
                f"{analysis.total_faults:>7} {len(equiv_only):>6} "
                f"{len(analysis.untestable):>7} "
                f"{len(analysis.dominated):>6} "
                f"{len(analysis.representatives):>8} "
                f"{analysis.collapse_ratio:>6.3f} "
                f"{len(analysis.checkpoints):>6} "
                f"{analysis.checkpoint_ratio:>10.3f}"
            )
    if level == LEVEL_EQUIV:
        lines.append(
            "(equiv level: targets = equivalence classes minus provably "
            "untestable ones)"
        )
    else:
        lines.append(
            "(targets = equivalence classes minus untestable and "
            "dominance-dropped ones; dropped classes are post-simulated "
            "at report time, so coverage stays exact)"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from ...harness.suite import TABLE2_CIRCUITS

    if args.circuits:
        names = [
            name.strip()
            for name in args.circuits.split(",")
            if name.strip()
        ]
    else:
        names = list(TABLE2_CIRCUITS)
    text = render_report(names, args.level, retimed=args.retimed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    from ..._util import note_legacy_entry

    note_legacy_entry(
        "python -m repro.fault.analysis",
        "python -m repro fault-analysis",
    )
    sys.exit(main())
