"""Word-parallel sequential stuck-at fault simulation (PROOFS substitute).

One 64-bit word carries 64 machines through the circuit at once: bit 0
is the fault-free machine, bits 1..63 are faulty machines, each with its
own stuck-at override.  A fault is detected when its bit differs from
the good bit at any primary output in any cycle of a test sequence.
Each sequence starts from the circuit's reset state (every test the ATPG
engines emit is a from-reset sequence, per the paper's explicit-reset /
power-up-reset setup).

Fault batches are scheduled PROOFS-style: surviving faults are regrouped
between sequences (drop-on-detect compaction), so later passes run fewer,
fuller words.  Each group's stuck-at overrides are resolved once into a
bound stepper (:meth:`~repro.sim.parallel.ParallelSimulator.bind_overrides`)
— flat keep/force arrays driving a pre-compiled masked word-op kernel —
so the per-vector path does no dict probing and no recompilation.  ``regroup=False`` freezes the
initial grouping for ablation; both schedules produce byte-identical
reports and counters (pinned by ``tests/fault/test_batching.py``).

Besides coverage, the simulator records the set of fully-specified
machine states the *good* machine traverses, which is exactly the
"#states trav by orig test set" instrumentation of the paper's Table 8.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .._util import chunked
from ..circuit.gates import ONE, X, ZERO
from ..circuit.netlist import Circuit
from ..errors import FaultError
from ..obs import MetricsRegistry
from ..sim.parallel import WORD_BITS, ParallelSimulator
from .collapse import collapse_faults
from .model import Fault

TestSequence = Sequence[Sequence[int]]  # vectors, each of width #PI

MAX_GROUP_WIDTH = WORD_BITS - 1  # bit 0 is reserved for the good machine


@dataclasses.dataclass
class FaultSimReport:
    """Outcome of fault-simulating a test set."""

    detected: Dict[Fault, int]  # fault -> index of detecting sequence
    undetected: List[Fault]
    vectors_simulated: int
    states_traversed: Set[Tuple[int, ...]]  # good-machine states visited

    @property
    def num_detected(self) -> int:
        return len(self.detected)

    def coverage_percent(self) -> float:
        total = len(self.detected) + len(self.undetected)
        if total == 0:
            return 100.0
        return 100.0 * len(self.detected) / total


class FaultSimulator:
    """Reusable fault simulator bound to one circuit.

    Effort lands in ``metrics`` (shared with the owning engine's
    :class:`~repro.obs.Observability` registry, or private by default):
    ``sim.events`` counts machine-steps (one simulated machine through
    one vector), ``sim.faults_dropped`` counts per-pass fault drops,
    ``sim.sequences`` counts sequences simulated.

    ``group_width`` caps the number of faulty machines packed per word
    (1..63; 63 fills the word).  ``regroup=True`` re-chunks the
    surviving fault list before every sequence so drop-on-detect
    compacts later passes into fewer, fuller words; ``regroup=False``
    freezes the initial grouping and merely skips dead machines.  Both
    knobs are pure scheduling — reports and deterministic counters are
    invariant.  ``backend`` is forwarded to the underlying
    :class:`~repro.sim.parallel.ParallelSimulator`.
    """

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Sequence[Fault]] = None,
        metrics: Optional[MetricsRegistry] = None,
        group_width: int = MAX_GROUP_WIDTH,
        regroup: bool = True,
        backend: str = "compiled",
    ):
        if any(dff.init == X for dff in circuit.dffs()):
            raise FaultError(
                f"circuit {circuit.name!r} has DFFs with unknown initial "
                "values; two-valued fault simulation needs a reset state"
            )
        if not 1 <= group_width <= MAX_GROUP_WIDTH:
            raise FaultError(
                f"group_width must be in 1..{MAX_GROUP_WIDTH}, got "
                f"{group_width}"
            )
        self.circuit = circuit
        self.group_width = group_width
        self.regroup = regroup
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._parallel = ParallelSimulator(
            circuit, metrics=self.metrics, backend=backend
        )
        self.events_counter = self.metrics.counter(
            "sim.events", circuit=circuit.name
        )
        self.dropped_counter = self.metrics.counter(
            "sim.faults_dropped", circuit=circuit.name
        )
        self.sequences_counter = self.metrics.counter(
            "sim.sequences", circuit=circuit.name
        )
        # Machine-steps spent expanding collapsed fault lists back over
        # the full universe (run_analyzed); kept out of sim.events so
        # engine search effort stays comparable across collapse levels.
        self.expansion_counter = self.metrics.counter(
            "sim.expansion_events", circuit=circuit.name
        )
        if faults is None:
            faults = collapse_faults(circuit).representatives
        self.faults: List[Fault] = list(faults)
        self._initial_state = [
            ONE if dff.init == ONE else ZERO for dff in circuit.dffs()
        ]
        # Bound steppers for groups of at most one fault, keyed by the
        # canonical (mask, overrides) pair.  HITEC validates every
        # candidate sequence with a single-fault :meth:`detects` call;
        # rebinding the override program each time re-derived the same
        # keep/force arrays, so the compiled kernel path is reused here.
        # Binding increments no counters, so caching cannot drift any
        # deterministic counter; the cache is bounded by the fault
        # universe (one entry per distinct single fault, plus the
        # fault-free stepper).
        self._single_steppers: Dict[
            Tuple[int, Tuple[Tuple[int, Tuple[int, int]], ...]], object
        ] = {}

    # -- public API -----------------------------------------------------------

    def run(
        self,
        sequences: Sequence[TestSequence],
        faults: Optional[Sequence[Fault]] = None,
        drop: bool = True,
    ) -> FaultSimReport:
        """Fault-simulate ``sequences`` (each applied from reset).

        With ``drop=True`` (the default, matching every classical flow)
        faults already detected by an earlier sequence are not simulated
        again.
        """
        remaining = list(self.faults if faults is None else faults)
        static_groups: Optional[List[List[Fault]]] = None
        if not self.regroup:
            static_groups = list(chunked(remaining, self.group_width)) or [[]]
        detected: Dict[Fault, int] = {}
        states: Set[Tuple[int, ...]] = set()
        vectors = 0
        for index, sequence in enumerate(sequences):
            vectors += len(sequence)
            self.sequences_counter.inc()
            caught = self._simulate_sequence(
                sequence, remaining, states, static_groups
            )
            # Insert in fault-list order, not set order: callers feed
            # report.detected back into the simulator (e.g. trimming), so
            # hash-dependent ordering would leak into batch composition.
            for fault in remaining:
                if fault in caught:
                    detected[fault] = index
            if drop:
                before = len(remaining)
                remaining = [f for f in remaining if f not in caught]
                self.dropped_counter.inc(before - len(remaining))
        return FaultSimReport(
            detected=detected,
            undetected=remaining,
            vectors_simulated=vectors,
            states_traversed=states,
        )

    def run_analyzed(
        self,
        sequences: Sequence[TestSequence],
        analysis,
        drop: bool = True,
    ) -> FaultSimReport:
        """Fault-simulate via a :class:`~repro.fault.analysis.FaultAnalysis`.

        Simulates the analyzer's reduced target list, then separately
        simulates the dominance-dropped class representatives (their
        detection cannot be inferred from the kept witnesses — see
        :mod:`repro.fault.analysis.dominance`), and expands both over
        the full fault universe.  The dropped-class pass is charged to
        ``sim.expansion_events`` instead of ``sim.events``.  Untestable
        classes are reported undetected (they are, provably).
        """
        rep_report = self.run(
            sequences, faults=analysis.representatives, drop=drop
        )
        detected_by_rep = dict(rep_report.detected)
        dropped = [
            rep
            for rep in analysis.equiv_representatives
            if rep in analysis.dominated
        ]
        if dropped and sequences:
            events_counter = self.events_counter
            self.events_counter = self.expansion_counter
            try:
                dropped_report = self.run(
                    sequences, faults=dropped, drop=drop
                )
            finally:
                self.events_counter = events_counter
            detected_by_rep.update(dropped_report.detected)
        detected, undetected = analysis.expand_detected(detected_by_rep)
        return FaultSimReport(
            detected=detected,
            undetected=undetected,
            vectors_simulated=rep_report.vectors_simulated,
            states_traversed=rep_report.states_traversed,
        )

    def detects(self, sequence: TestSequence, fault: Fault) -> bool:
        """Serial convenience: does this one sequence detect this fault?

        Runs on the compiled kernel path like every other call; the
        single-fault bound stepper is cached, so HITEC validating many
        candidate sequences against one fault binds the override
        program once instead of per call.
        """
        caught = self._simulate_sequence(sequence, [fault], None)
        return fault in caught

    def good_trace_states(
        self, sequences: Sequence[TestSequence]
    ) -> Set[Tuple[int, ...]]:
        """States the fault-free machine traverses over the test set."""
        states: Set[Tuple[int, ...]] = set()
        for sequence in sequences:
            self._simulate_sequence(sequence, [], states)
        return states

    # -- internals ----------------------------------------------------------------

    def _simulate_sequence(
        self,
        sequence: TestSequence,
        faults: Sequence[Fault],
        states_out: Optional[Set[Tuple[int, ...]]],
        static_groups: Optional[List[List[Fault]]] = None,
    ) -> Set[Fault]:
        """Simulate one sequence against ``faults``; returns those caught.

        ``states_out`` is an accumulator for good-machine states, or
        ``None`` for a state-free run (e.g. :meth:`detects`).  With
        ``static_groups`` the frozen grouping is reused, dead machines
        filtered out; otherwise survivors are re-chunked fresh.
        """
        # Validate and pack each vector once per sequence (full-width
        # words; the stepper masks on load), not once per fault group.
        full = (1 << WORD_BITS) - 1
        packed: List[List[int]] = []
        for vector in sequence:
            pi_words = []
            for bit in vector:
                if bit not in (ZERO, ONE):
                    raise FaultError(
                        "test vectors must be fully specified 0/1 values"
                    )
                pi_words.append(full if bit == ONE else 0)
            packed.append(pi_words)
        caught: Set[Fault] = set()
        groups = self._schedule(faults, static_groups)
        for group in groups:
            caught |= self._simulate_group(packed, list(group), states_out)
        return caught

    def _schedule(
        self,
        faults: Sequence[Fault],
        static_groups: Optional[List[List[Fault]]],
    ) -> List[List[Fault]]:
        """Partition surviving ``faults`` into word-sized batches.

        Either path degenerates to one empty group when nothing survives
        — the good machine still runs (state recording, event
        accounting stay identical whether or not faults ride along).
        """
        if static_groups is None:
            return list(chunked(list(faults), self.group_width)) or [[]]
        alive = set(faults)
        groups = [
            [fault for fault in group if fault in alive]
            for group in static_groups
        ]
        return [group for group in groups if group] or [[]]

    def _simulate_group(
        self,
        packed: List[List[int]],
        group: List[Fault],
        states_out: Optional[Set[Tuple[int, ...]]],
    ) -> Set[Fault]:
        sim = self._parallel
        num_machines = len(group) + 1  # bit 0 = good machine
        mask = (1 << num_machines) - 1

        overrides: Dict[int, Tuple[int, int]] = {}
        for position, fault in enumerate(group, start=1):
            node_index = sim.node_index(fault.node)
            affected, forced = overrides.get(node_index, (0, 0))
            affected |= 1 << position
            if fault.stuck_at == ONE:
                forced |= 1 << position
            overrides[node_index] = (affected, forced)
        if len(group) <= 1:
            # The detects() validation path binds the same single-fault
            # override program over and over; reuse the compiled stepper.
            cache_key = (mask, tuple(sorted(overrides.items())))
            stepper = self._single_steppers.get(cache_key)
            if stepper is None:
                stepper = sim.bind_overrides(overrides, mask)
                self._single_steppers[cache_key] = stepper
        else:
            stepper = sim.bind_overrides(overrides, mask)

        state_words = [
            mask if bit == ONE else 0 for bit in self._initial_state
        ]
        if states_out is not None:
            states_out.add(self._good_state(state_words))
        detected_mask, steps = stepper.run_detect(
            packed, state_words, states_out
        )
        self.events_counter.inc(num_machines * steps)
        caught: Set[Fault] = set()
        for position, fault in enumerate(group, start=1):
            if (detected_mask >> position) & 1:
                caught.add(fault)
        return caught

    def _good_state(self, state_words: Sequence[int]) -> Tuple[int, ...]:
        return tuple(word & 1 for word in state_words)
