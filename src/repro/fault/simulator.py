"""Word-parallel sequential stuck-at fault simulation (PROOFS substitute).

One 64-bit word carries 64 machines through the circuit at once: bit 0
is the fault-free machine, bits 1..63 are faulty machines, each with its
own stuck-at override.  A fault is detected when its bit differs from
the good bit at any primary output in any cycle of a test sequence.
Each sequence starts from the circuit's reset state (every test the ATPG
engines emit is a from-reset sequence, per the paper's explicit-reset /
power-up-reset setup).

Besides coverage, the simulator records the set of fully-specified
machine states the *good* machine traverses, which is exactly the
"#states trav by orig test set" instrumentation of the paper's Table 8.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .._util import chunked
from ..circuit.gates import ONE, X, ZERO
from ..circuit.netlist import Circuit
from ..errors import FaultError
from ..obs import MetricsRegistry
from ..sim.parallel import WORD_BITS, ParallelSimulator
from .collapse import collapse_faults
from .model import Fault

TestSequence = Sequence[Sequence[int]]  # vectors, each of width #PI


@dataclasses.dataclass
class FaultSimReport:
    """Outcome of fault-simulating a test set."""

    detected: Dict[Fault, int]  # fault -> index of detecting sequence
    undetected: List[Fault]
    vectors_simulated: int
    states_traversed: Set[Tuple[int, ...]]  # good-machine states visited

    @property
    def num_detected(self) -> int:
        return len(self.detected)

    def coverage_percent(self) -> float:
        total = len(self.detected) + len(self.undetected)
        if total == 0:
            return 100.0
        return 100.0 * len(self.detected) / total


class FaultSimulator:
    """Reusable fault simulator bound to one circuit.

    Effort lands in ``metrics`` (shared with the owning engine's
    :class:`~repro.obs.Observability` registry, or private by default):
    ``sim.events`` counts machine-steps (one simulated machine through
    one vector), ``sim.faults_dropped`` counts per-pass fault drops,
    ``sim.sequences`` counts sequences simulated.
    """

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Sequence[Fault]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if any(dff.init == X for dff in circuit.dffs()):
            raise FaultError(
                f"circuit {circuit.name!r} has DFFs with unknown initial "
                "values; two-valued fault simulation needs a reset state"
            )
        self.circuit = circuit
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._parallel = ParallelSimulator(circuit, metrics=self.metrics)
        self.events_counter = self.metrics.counter(
            "sim.events", circuit=circuit.name
        )
        self.dropped_counter = self.metrics.counter(
            "sim.faults_dropped", circuit=circuit.name
        )
        self.sequences_counter = self.metrics.counter(
            "sim.sequences", circuit=circuit.name
        )
        # Machine-steps spent expanding collapsed fault lists back over
        # the full universe (run_analyzed); kept out of sim.events so
        # engine search effort stays comparable across collapse levels.
        self.expansion_counter = self.metrics.counter(
            "sim.expansion_events", circuit=circuit.name
        )
        if faults is None:
            faults = collapse_faults(circuit).representatives
        self.faults: List[Fault] = list(faults)
        self._initial_state = [
            ONE if dff.init == ONE else ZERO for dff in circuit.dffs()
        ]

    # -- public API -----------------------------------------------------------

    def run(
        self,
        sequences: Sequence[TestSequence],
        faults: Optional[Sequence[Fault]] = None,
        drop: bool = True,
    ) -> FaultSimReport:
        """Fault-simulate ``sequences`` (each applied from reset).

        With ``drop=True`` (the default, matching every classical flow)
        faults already detected by an earlier sequence are not simulated
        again.
        """
        remaining = list(self.faults if faults is None else faults)
        detected: Dict[Fault, int] = {}
        states: Set[Tuple[int, ...]] = set()
        vectors = 0
        for index, sequence in enumerate(sequences):
            vectors += len(sequence)
            self.sequences_counter.inc()
            caught = self._simulate_sequence(sequence, remaining, states)
            # Insert in fault-list order, not set order: callers feed
            # report.detected back into the simulator (e.g. trimming), so
            # hash-dependent ordering would leak into batch composition.
            for fault in remaining:
                if fault in caught:
                    detected[fault] = index
            if drop:
                before = len(remaining)
                remaining = [f for f in remaining if f not in caught]
                self.dropped_counter.inc(before - len(remaining))
        return FaultSimReport(
            detected=detected,
            undetected=remaining,
            vectors_simulated=vectors,
            states_traversed=states,
        )

    def run_analyzed(
        self,
        sequences: Sequence[TestSequence],
        analysis,
        drop: bool = True,
    ) -> FaultSimReport:
        """Fault-simulate via a :class:`~repro.fault.analysis.FaultAnalysis`.

        Simulates the analyzer's reduced target list, then separately
        simulates the dominance-dropped class representatives (their
        detection cannot be inferred from the kept witnesses — see
        :mod:`repro.fault.analysis.dominance`), and expands both over
        the full fault universe.  The dropped-class pass is charged to
        ``sim.expansion_events`` instead of ``sim.events``.  Untestable
        classes are reported undetected (they are, provably).
        """
        rep_report = self.run(
            sequences, faults=analysis.representatives, drop=drop
        )
        detected_by_rep = dict(rep_report.detected)
        dropped = [
            rep
            for rep in analysis.equiv_representatives
            if rep in analysis.dominated
        ]
        if dropped and sequences:
            events_counter = self.events_counter
            self.events_counter = self.expansion_counter
            try:
                dropped_report = self.run(
                    sequences, faults=dropped, drop=drop
                )
            finally:
                self.events_counter = events_counter
            detected_by_rep.update(dropped_report.detected)
        detected, undetected = analysis.expand_detected(detected_by_rep)
        return FaultSimReport(
            detected=detected,
            undetected=undetected,
            vectors_simulated=rep_report.vectors_simulated,
            states_traversed=rep_report.states_traversed,
        )

    def detects(self, sequence: TestSequence, fault: Fault) -> bool:
        """Serial convenience: does this one sequence detect this fault?"""
        caught = self._simulate_sequence(sequence, [fault], set())
        return fault in caught

    def good_trace_states(
        self, sequences: Sequence[TestSequence]
    ) -> Set[Tuple[int, ...]]:
        """States the fault-free machine traverses over the test set."""
        states: Set[Tuple[int, ...]] = set()
        for sequence in sequences:
            self._simulate_sequence(sequence, [], states)
        return states

    # -- internals ----------------------------------------------------------------

    def _simulate_sequence(
        self,
        sequence: TestSequence,
        faults: Sequence[Fault],
        states_out: Set[Tuple[int, ...]],
    ) -> Set[Fault]:
        """Simulate one sequence against ``faults``; returns those caught."""
        caught: Set[Fault] = set()
        groups = list(chunked(list(faults), WORD_BITS - 1)) or [[]]
        for group in groups:
            caught |= self._simulate_group(sequence, list(group), states_out)
        return caught

    def _simulate_group(
        self,
        sequence: TestSequence,
        group: List[Fault],
        states_out: Set[Tuple[int, ...]],
    ) -> Set[Fault]:
        sim = self._parallel
        num_machines = len(group) + 1  # bit 0 = good machine
        mask = (1 << num_machines) - 1

        overrides: Dict[int, Tuple[int, int]] = {}
        for position, fault in enumerate(group, start=1):
            node_index = sim.node_index(fault.node)
            affected, forced = overrides.get(node_index, (0, 0))
            affected |= 1 << position
            if fault.stuck_at == ONE:
                forced |= 1 << position
            overrides[node_index] = (affected, forced)

        state_words = [
            mask if bit == ONE else 0 for bit in self._initial_state
        ]
        detected_mask = 0
        events = 0
        record_states = states_out is not None
        if record_states:
            states_out.add(self._good_state(state_words))
        for vector in sequence:
            events += num_machines
            pi_words = []
            for bit in vector:
                if bit not in (ZERO, ONE):
                    raise FaultError(
                        "test vectors must be fully specified 0/1 values"
                    )
                pi_words.append(mask if bit == ONE else 0)
            po_words, state_words = sim.step(
                pi_words, state_words, mask, overrides
            )
            if record_states:
                states_out.add(self._good_state(state_words))
            for word in po_words:
                good = word & 1
                reference = mask if good else 0
                detected_mask |= (word ^ reference) & mask
            if detected_mask == mask & ~1:
                break  # every fault in the group already caught
        self.events_counter.inc(events)
        caught: Set[Fault] = set()
        for position, fault in enumerate(group, start=1):
            if (detected_mask >> position) & 1:
                caught.add(fault)
        return caught

    def _good_state(self, state_words: Sequence[int]) -> Tuple[int, ...]:
        return tuple(word & 1 for word in state_words)
