"""Single stuck-at fault model.

Fault universe: a stuck-at-0 and stuck-at-1 fault on the output of every
node (primary inputs, gates, DFF outputs), the classical line-fault
model at stem granularity.  Fanout-branch faults are not modeled
separately; equivalence collapsing through buffer/inverter chains (see
:mod:`repro.fault.collapse`) reduces the universe the same way HITEC's
fault-list preprocessing did.

Fault coverage / fault efficiency accounting matches the paper:

* ``fault coverage``  = detected / total,
* ``fault efficiency`` = (detected + proven redundant) / total,

with aborted (budget-exhausted) faults counting against both.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Sequence

from ..circuit.gates import ONE, ZERO
from ..circuit.netlist import Circuit
from ..errors import FaultError


@dataclasses.dataclass(frozen=True, order=True)
class Fault:
    """One single stuck-at fault on a node's output line."""

    node: str
    stuck_at: int  # ZERO or ONE

    def __post_init__(self):
        if self.stuck_at not in (ZERO, ONE):
            raise FaultError(
                f"stuck_at must be 0 or 1, got {self.stuck_at!r}"
            )

    def __str__(self) -> str:
        return f"{self.node}/sa{self.stuck_at}"


def full_fault_list(circuit: Circuit) -> List[Fault]:
    """Both stuck-at faults on every node, in deterministic order."""
    faults: List[Fault] = []
    for node in circuit.nodes():
        faults.append(Fault(node.name, ZERO))
        faults.append(Fault(node.name, ONE))
    return faults


@dataclasses.dataclass
class FaultStatus:
    """Mutable bookkeeping for one fault during an ATPG/simulation run."""

    fault: Fault
    state: str = "untested"  # untested | detected | redundant | aborted
    detected_by: int = -1  # index of the detecting test sequence

    def is_open(self) -> bool:
        return self.state == "untested"


@dataclasses.dataclass
class CoverageSummary:
    """The paper's %FC / %FE pair plus raw counts."""

    total: int
    detected: int
    redundant: int
    aborted: int

    @property
    def fault_coverage(self) -> float:
        if self.total == 0:
            return 100.0
        return 100.0 * self.detected / self.total

    @property
    def fault_efficiency(self) -> float:
        if self.total == 0:
            return 100.0
        return 100.0 * (self.detected + self.redundant) / self.total

    def __str__(self) -> str:
        return (
            f"FC={self.fault_coverage:.1f}% FE={self.fault_efficiency:.1f}% "
            f"({self.detected} det / {self.redundant} red / "
            f"{self.aborted} abort / {self.total} total)"
        )


def summarize(statuses: Iterable[FaultStatus]) -> CoverageSummary:
    total = detected = redundant = aborted = 0
    for status in statuses:
        total += 1
        if status.state == "detected":
            detected += 1
        elif status.state == "redundant":
            redundant += 1
        elif status.state == "aborted":
            aborted += 1
    return CoverageSummary(
        total=total, detected=detected, redundant=redundant, aborted=aborted
    )
