"""Single stuck-at fault model.

Fault universe: a stuck-at-0 and stuck-at-1 fault on the output of every
node (primary inputs, gates, DFF outputs), the classical line-fault
model at stem granularity.  Fanout-branch faults are not modeled
separately; equivalence collapsing through buffer/inverter chains (see
:mod:`repro.fault.collapse`) reduces the universe the same way HITEC's
fault-list preprocessing did.

Fault coverage / fault efficiency accounting matches the paper:

* ``fault coverage``  = detected / total,
* ``fault efficiency`` = (detected + proven redundant + proven
  untestable) / total,

with aborted (budget-exhausted) faults counting against both.
Faults the static analyzer (:mod:`repro.fault.analysis`) proves
undetectable without any search carry the ``untestable`` state; like
the paper's redundant faults they count toward efficiency but never
toward coverage.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Sequence

from ..circuit.gates import ONE, ZERO
from ..circuit.netlist import Circuit
from ..errors import FaultError


@dataclasses.dataclass(frozen=True, order=True)
class Fault:
    """One single stuck-at fault on a node's output line."""

    node: str
    stuck_at: int  # ZERO or ONE

    def __post_init__(self):
        if self.stuck_at not in (ZERO, ONE):
            raise FaultError(
                f"stuck_at must be 0 or 1, got {self.stuck_at!r}"
            )

    def __str__(self) -> str:
        return f"{self.node}/sa{self.stuck_at}"


def full_fault_list(circuit: Circuit) -> List[Fault]:
    """Both stuck-at faults on every node, sorted by site.

    The ordering contract is explicit: faults are sorted by
    ``(node name, stuck value)``, which depends only on the netlist's
    node names — never on dict iteration or hash seeds.  Every
    downstream list (equivalence representatives, the analyzer's
    reduced target list, fault-sample draws) derives its order from
    this one, so collapsed fault lists are PYTHONHASHSEED-stable and
    identical across worker processes.
    """
    faults: List[Fault] = []
    for node in circuit.nodes():
        faults.append(Fault(node.name, ZERO))
        faults.append(Fault(node.name, ONE))
    faults.sort()
    return faults


@dataclasses.dataclass
class FaultStatus:
    """Mutable bookkeeping for one fault during an ATPG/simulation run."""

    fault: Fault
    # untested | detected | redundant | aborted | untestable
    # ("untestable" = statically proven undetectable by
    # repro.fault.analysis, with zero search effort spent).
    state: str = "untested"
    detected_by: int = -1  # index of the detecting test sequence

    def is_open(self) -> bool:
        return self.state == "untested"


@dataclasses.dataclass
class CoverageSummary:
    """The paper's %FC / %FE pair plus raw counts."""

    total: int
    detected: int
    redundant: int
    aborted: int
    # Statically proven undetectable (repro.fault.analysis); counts
    # toward efficiency like redundancy, but no search was ever spent.
    untestable: int = 0

    @property
    def fault_coverage(self) -> float:
        if self.total == 0:
            return 100.0
        return 100.0 * self.detected / self.total

    @property
    def fault_efficiency(self) -> float:
        if self.total == 0:
            return 100.0
        resolved = self.detected + self.redundant + self.untestable
        return 100.0 * resolved / self.total

    def __str__(self) -> str:
        return (
            f"FC={self.fault_coverage:.1f}% FE={self.fault_efficiency:.1f}% "
            f"({self.detected} det / {self.redundant} red / "
            f"{self.untestable} untest / "
            f"{self.aborted} abort / {self.total} total)"
        )


def summarize(statuses: Iterable[FaultStatus]) -> CoverageSummary:
    total = detected = redundant = aborted = untestable = 0
    for status in statuses:
        total += 1
        if status.state == "detected":
            detected += 1
        elif status.state == "redundant":
            redundant += 1
        elif status.state == "aborted":
            aborted += 1
        elif status.state == "untestable":
            untestable += 1
    return CoverageSummary(
        total=total,
        detected=detected,
        redundant=redundant,
        aborted=aborted,
        untestable=untestable,
    )
