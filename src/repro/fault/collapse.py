"""Fault equivalence collapsing.

Two stuck-at faults are equivalent when every test detecting one detects
the other; test generation only needs one representative per class.  At
stem granularity the applicable structural equivalences are:

* through a **buffer** with a fanout-free input line: ``in/sa-v`` ≡
  ``out/sa-v``;
* through an **inverter** with a fanout-free input line: ``in/sa-v`` ≡
  ``out/sa-(1-v)``;
* a **controlling-value input** fault of AND/OR/NAND/NOR gates is
  equivalent to the corresponding output fault, which at stem
  granularity collapses a fanout-free driver's fault into the gate
  output fault (e.g. ``u/sa0 ≡ g/sa0`` when ``g = AND(u, ...)`` and
  ``u`` only drives ``g``).

The deepest node of each class is kept as representative (closest to
the observation points).  Collapsing ratios of 40-60% are normal, the
same ballpark classical tools report.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..circuit.gates import GateType, ONE, ZERO
from ..circuit.netlist import Circuit, NodeKind
from .model import Fault, full_fault_list


@dataclasses.dataclass
class CollapseReport:
    """Representative faults plus the equivalence map."""

    representatives: List[Fault]
    class_of: Dict[Fault, Fault]  # every fault -> its representative

    @property
    def total_faults(self) -> int:
        return len(self.class_of)

    @property
    def collapse_ratio(self) -> float:
        if not self.class_of:
            return 1.0
        return len(self.representatives) / len(self.class_of)


def collapse_faults(circuit: Circuit) -> CollapseReport:
    """Collapse the full stem-fault universe of ``circuit``."""
    union: Dict[Fault, Fault] = {}

    def find(fault: Fault) -> Fault:
        root = fault
        while union.get(root, root) != root:
            root = union[root]
        # Path compression.
        current = fault
        while union.get(current, current) != current:
            union[current], current = root, union[current]
        return root

    def merge(a: Fault, b: Fault) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            union[ra] = rb  # b's root wins: callers pass (input, output)

    fanouts = circuit.fanouts()
    for node in circuit.nodes():
        if node.kind is not NodeKind.GATE:
            continue
        gate = node.gate
        for driver in node.fanin:
            if len(fanouts[driver]) != 1 or circuit.is_output(driver):
                continue  # branch point or observable: not collapsible
            if gate is GateType.BUF:
                merge(Fault(driver, ZERO), Fault(node.name, ZERO))
                merge(Fault(driver, ONE), Fault(node.name, ONE))
            elif gate is GateType.NOT:
                merge(Fault(driver, ZERO), Fault(node.name, ONE))
                merge(Fault(driver, ONE), Fault(node.name, ZERO))
            elif gate in (GateType.AND, GateType.NAND):
                output_value = (
                    ZERO if gate is GateType.AND else ONE
                )
                merge(Fault(driver, ZERO), Fault(node.name, output_value))
            elif gate in (GateType.OR, GateType.NOR):
                output_value = ONE if gate is GateType.OR else ZERO
                merge(Fault(driver, ONE), Fault(node.name, output_value))

    all_faults = full_fault_list(circuit)
    class_of = {fault: find(fault) for fault in all_faults}
    seen = {}
    representatives: List[Fault] = []
    for fault in all_faults:
        root = class_of[fault]
        if root not in seen:
            seen[root] = True
            representatives.append(root)
    return CollapseReport(
        representatives=representatives, class_of=class_of
    )
