"""Table 7: density-of-encoding sensitivity analysis.

Default sweep depth is 2: the depth-3/4 retimings of s510.jo.sr carry
60-110 registers and their exact reachable-set computation takes tens
of minutes; pass deeper ``depths`` explicitly when that cost is
acceptable.

Multiple retimed versions of one original circuit (the paper uses
s510.jo.sr): same function, same sequential depth and cycle structure
(Theorems 2-4), different register counts — therefore different
densities of encoding.  Depth-controlled backward retiming provides the
sweep (see repro.retime.core.backward_retime for why period-driven
retiming is a no-op on single-rank FSM netlists).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis.density import reachability_report
from ..retime.core import RetimedCircuit, backward_retiming_sweep
from ..retime.timing import clock_period
from .config import HarnessConfig
from .suite import TABLE7_CIRCUIT, synthesize_named
from .tables import Column, Table, eng


def sweep_circuits(
    config: Optional[HarnessConfig] = None,
    circuit_name: str = TABLE7_CIRCUIT,
    depths: Tuple[int, ...] = (1, 2),
) -> Tuple[object, List[RetimedCircuit]]:
    """The original circuit plus its retimed versions (shared with the
    Figure 3 harness)."""
    original = synthesize_named(circuit_name)
    versions = backward_retiming_sweep(original.circuit, depths)
    return original, versions


def compute_rows(
    config: Optional[HarnessConfig] = None,
    circuit_name: str = TABLE7_CIRCUIT,
    depths: Tuple[int, ...] = (1, 2),
) -> List[dict]:
    config = config or HarnessConfig.default()
    original, versions = sweep_circuits(config, circuit_name, depths)
    rows = [_row(circuit_name, original.circuit)]
    for version in versions:
        rows.append(_row(version.circuit.name, version.circuit))
    return rows


def generate(
    config: Optional[HarnessConfig] = None,
    circuit_name: str = TABLE7_CIRCUIT,
    depths: Tuple[int, ...] = (1, 2),
) -> Table:
    return build_table(compute_rows(config, circuit_name, depths))


def build_table(rows: List[dict]) -> Table:
    return Table(
        title="Table 7: Density of encoding sensitivity analysis",
        columns=[
            Column("circuit", "circuit"),
            Column("delay", "delay (nsec)", lambda v: f"{v:.2f}"),
            Column("dffs", "#DFF"),
            Column("valid", "#valid states"),
            Column("total", "total #states", eng),
            Column("density", "density of encoding", eng),
        ],
        rows=rows,
    )


def _row(name: str, circuit) -> dict:
    report = reachability_report(circuit)
    return {
        "circuit": name,
        "delay": clock_period(circuit),
        "dffs": circuit.num_dffs(),
        "valid": report.num_valid_states,
        "total": float(report.total_states),
        "density": report.density_of_encoding,
    }
