"""Cache-first execution: the harness as a client of repro.service.

With ``config.store_dir`` set, :func:`repro.harness.runner
.run_experiment` routes every to-do cell through a
:class:`ServiceSession` before computing anything:

* each cell's canonical content address is built by
  :func:`repro.service.keys.cell_key` (task coordinates × science
  config × circuit structure hashes — the parent synthesizes the pair
  once, through the in-process suite cache, to hash its structure);
* cells already in the store append their cached
  :class:`~repro.harness.ledger.TaskRecord` to the run ledger verbatim
  — report assembly and resume then treat them exactly like freshly
  computed rows, so a warm run's tables and reports are byte-identical
  to the cold run that populated the store;
* cache misses execute as usual (local pool, or a service daemon when
  ``config.service_socket`` is set) and their successful records are
  stored for every later run.

Cache traffic is counted in ``service.cache_hits`` /
``service.cache_misses`` / ``service.queue_depth`` on a parent-side
:class:`~repro.obs.MetricsRegistry`, dumped to
``<run_dir>/service.json``.  Probing happens in canonical task order
in the parent, so the counters are deterministic across ``--jobs``
levels; they never enter ledger rows or the report text (which must
stay byte-identical between cold and warm runs).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, List, Optional

from ..obs import MetricsRegistry
from ..obs.telemetry import TraceContext
from ..service import ResultStore, ServiceClient
from ..service import keys as service_keys
from . import ledger as ledger_mod
from .config import HarnessConfig
from .ledger import TaskRecord
from .suite import build_pair

Emit = Callable[[str], None]


class ServiceSession:
    """One run's view of the result cache (and optional daemon)."""

    def __init__(self, config: HarnessConfig):
        self.config = config
        self.store: Optional[ResultStore] = (
            ResultStore(config.store_dir) if config.store_dir else None
        )
        self.metrics = MetricsRegistry()
        self.hits = self.metrics.counter("service.cache_hits")
        self.misses = self.metrics.counter("service.cache_misses")
        self.queue_depth = self.metrics.gauge("service.queue_depth")
        self._cell_keys: Dict[str, str] = {}
        #: task key -> trace id for cells routed through the daemon
        #: (advisory: joins this run to the daemon's telemetry.jsonl).
        self.daemon_traces: Dict[str, str] = {}

    # -- keys ----------------------------------------------------------

    def cell_key(self, task) -> str:
        """Content address of one task cell (memoized per task key)."""
        if task.key not in self._cell_keys:
            structures = None
            if task.pair is not None:
                pair = build_pair(
                    task.pair, self.config.retime_target_ratio
                )
                structures = {
                    "original": service_keys.circuit_structure_hash(
                        pair.original_circuit
                    ),
                    "retimed": service_keys.circuit_structure_hash(
                        pair.retimed_circuit
                    ),
                }
            self._cell_keys[task.key] = service_keys.cell_key(
                task, self.config, structures
            )
        return self._cell_keys[task.key]

    # -- cache probe ---------------------------------------------------

    def serve_cached(self, tasks: List, ledger_file: str, emit: Emit) -> List:
        """Append cache hits to the run ledger; returns the misses.

        Probes in canonical task order so hit/miss counters are
        scheduling-independent.  Without a store every task is a miss
        (counted, so daemon-only runs still report traffic).
        """
        remaining = []
        for task in tasks:
            data = (
                self.store.get(self.cell_key(task)) if self.store else None
            )
            if data is None:
                self.misses.inc()
                remaining.append(task)
                continue
            ledger_mod.append_record(ledger_file, TaskRecord.from_dict(data))
            self.hits.inc()
            emit(f"[service] {task.key} served from cache")
        return remaining

    # -- write-back ----------------------------------------------------

    def store_fresh(
        self, tasks: List, records: List[TaskRecord], fingerprint: str
    ) -> int:
        """Persist the successful records of locally computed cells;
        returns how many entries were written."""
        if self.store is None:
            return 0
        completed = ledger_mod.completed_by_key(records, fingerprint)
        stored = 0
        for task in tasks:
            record = completed.get(task.key)
            if record is None:
                continue
            self.store.put(
                self.cell_key(task), json.loads(record.to_json())
            )
            stored += 1
        return stored

    # -- daemon execution ----------------------------------------------

    def run_via_daemon(
        self, tasks: List, ledger_file: str, emit: Emit
    ) -> None:
        """Execute cache misses on the daemon at ``config.service_socket``.

        Submits every cell (the daemon dedups in-flight keys), then
        collects results in canonical order, appending each returned
        record — success or quarantine — to the run ledger so report
        assembly is oblivious to where the cell ran.

        Each submit is stamped with a fresh trace context whose trace
        id is kept in :attr:`daemon_traces` (and the session summary),
        so the daemon-side telemetry event log can be joined back to
        this run's cells.
        """
        client = ServiceClient(self.config.service_socket)
        config_data = self.config.to_dict()
        jobs = []
        for task in tasks:
            context = TraceContext.new()
            response = client.submit(
                self.cell_key(task),
                dataclasses.asdict(task),
                config_data,
                trace=context,
            )
            self.daemon_traces[task.key] = response.get(
                "trace_id", context.trace_id
            )
            jobs.append((task, response["job"]))
        pending = len(jobs)
        self.queue_depth.set(pending)
        for task, job in jobs:
            # No client-side deadline: the daemon enforces per-task
            # timeouts/retries and always reaches a terminal state.
            response = client.result(job)
            pending -= 1
            self.queue_depth.set(pending)
            record_data = response.get("record")
            if record_data is not None:
                ledger_mod.append_record(
                    ledger_file, TaskRecord.from_dict(record_data)
                )
            emit(
                f"[service] {task.key} {response['state']} via daemon"
            )

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict:
        """JSON-able session summary (written to ``service.json``)."""
        data = {
            "metrics": self.metrics.dump(),
            "cache_hits": self.hits.value,
            "cache_misses": self.misses.value,
            "store": self.store.stats().to_dict() if self.store else None,
            "socket": self.config.service_socket,
            # None (not {}) when no cell went through the daemon, so
            # store-only cold/warm summaries stay comparable.
            "daemon_traces": self.daemon_traces or None,
        }
        return data
