"""Table 4: Sequential EST (PODEM + state learning) results."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .atpg_tables import (
    PairRun,
    coverage_ratio_table,
    coverage_table_from_rows,
)
from .config import HarnessConfig
from .suite import TABLE4_CIRCUITS
from .tables import Table

TITLE = "Table 4: Sequential EST ATPG results (learning engine)"


def build_table(rows: List[dict]) -> Table:
    return coverage_table_from_rows(TITLE, rows)


def generate(
    config: Optional[HarnessConfig] = None,
) -> Tuple[Table, List[PairRun]]:
    """Regenerate Table 4 (the learning engine on the paper's five SEST
    circuits).

    Expected shape: retimed circuits cost more and cover less; learning
    softens but does not remove the degradation.
    """
    config = config or HarnessConfig.default()
    circuits = config.circuits or TABLE4_CIRCUITS
    return coverage_ratio_table(TITLE, circuits, "sest", config)
