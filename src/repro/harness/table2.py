"""Table 2: HITEC ATPG results on the 16 original/retimed pairs."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .atpg_tables import (
    PairRun,
    hitec_table,
    hitec_table_from_rows,
)
from .config import HarnessConfig
from .suite import TABLE2_CIRCUITS
from .tables import Table


def build_table(rows: List[dict]) -> Table:
    return hitec_table_from_rows(rows)


def generate(
    config: Optional[HarnessConfig] = None,
) -> Tuple[Table, List[PairRun]]:
    """Regenerate Table 2 (HITEC on every pair the config selects).

    Expected shape versus the paper: every retimed circuit costs more
    CPU (ratios well above 1, spread over orders of magnitude at higher
    budgets) and attains equal-or-lower coverage, with the deepest
    coverage collapses on the lowest-density retimed circuits.
    """
    config = config or HarnessConfig.default()
    circuits = config.circuits or TABLE2_CIRCUITS
    return hitec_table(circuits, config)
