"""Figure 3: ATPG performance as a function of density of encoding.

For the original circuit and each retimed version of the Table 7 sweep,
run HITEC with per-fault checkpointing and emit the (CPU seconds,
fault efficiency) series.  The paper's shape: the lower the density of
encoding, the more CPU any given fault-efficiency level costs — the
curves order by density.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..analysis.density import reachability_report
from ..atpg.hitec import HitecEngine
from ..fault.analysis import analyze_faults_cached
from .config import HarnessConfig, select_target_faults
from .suite import TABLE7_CIRCUIT
from .table7 import sweep_circuits


@dataclasses.dataclass
class Curve:
    """One Figure 3 series."""

    circuit_name: str
    density_of_encoding: float
    points: List[Tuple[float, float]]  # (cpu seconds, fault efficiency %)
    # Invalid fraction of the run's classified search-examine events
    # (the search observatory's waste fraction); None on curves from
    # pre-observatory ledgers.
    invalid_fraction: Optional[float] = None

    def final_efficiency(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def cpu_to_reach(self, efficiency: float) -> Optional[float]:
        """CPU seconds until the run first reached the given FE level."""
        for cpu, fe in self.points:
            if fe >= efficiency:
                return cpu
        return None

    def to_dict(self) -> dict:
        """JSON-able form for the run ledger."""
        return {
            "circuit_name": self.circuit_name,
            "density_of_encoding": self.density_of_encoding,
            "points": [[cpu, fe] for cpu, fe in self.points],
            "invalid_fraction": self.invalid_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Curve":
        return cls(
            circuit_name=data["circuit_name"],
            density_of_encoding=data["density_of_encoding"],
            points=[(cpu, fe) for cpu, fe in data["points"]],
            invalid_fraction=data.get("invalid_fraction"),
        )


def generate(
    config: Optional[HarnessConfig] = None,
    circuit_name: str = TABLE7_CIRCUIT,
    depths: Tuple[int, ...] = (1, 2),
) -> List[Curve]:
    config = config or HarnessConfig.default()
    original, versions = sweep_circuits(config, circuit_name, depths)
    circuits = [original.circuit] + [v.circuit for v in versions]
    curves: List[Curve] = []
    for circuit in circuits:
        density = reachability_report(circuit).density_of_encoding
        # Engine-side FE curves: the reduced target list is the point
        # (same analysis cache as the tables), no expansion needed.
        analysis = analyze_faults_cached(
            circuit, level=config.collapse_level
        )
        faults = select_target_faults(analysis, config)
        result = HitecEngine(circuit, budget=config.budget).run(faults)
        points = [
            (cp.cpu_seconds, cp.fault_efficiency)
            for cp in result.checkpoints
        ]
        counters = result.counters()
        classified = counters.get("search.valid_events", 0) + counters.get(
            "search.invalid_events", 0
        )
        invalid_fraction = (
            counters.get("search.invalid_events", 0) / classified
            if classified
            else None
        )
        curves.append(
            Curve(
                circuit_name=circuit.name,
                density_of_encoding=density,
                points=points,
                invalid_fraction=invalid_fraction,
            )
        )
    return curves


def render(curves: List[Curve]) -> str:
    """ASCII rendering of the curves (final FE and CPU-to-level marks)."""
    lines = [
        "Figure 3: ATPG performance as a function of density of encoding"
    ]
    levels = (50.0, 75.0, 90.0, 95.0)
    header = f"{'circuit':24s} {'density':>10s} " + " ".join(
        f"cpu@{int(level)}%" .rjust(9) for level in levels
    ) + "  final FE  inv-frac"
    lines.append(header)
    for curve in sorted(
        curves, key=lambda c: -c.density_of_encoding
    ):
        marks = []
        for level in levels:
            cpu = curve.cpu_to_reach(level)
            marks.append(f"{cpu:9.1f}" if cpu is not None else "        -")
        invalid = (
            f"{curve.invalid_fraction:8.4f}"
            if curve.invalid_fraction is not None
            else "       -"
        )
        lines.append(
            f"{curve.circuit_name:24s} {curve.density_of_encoding:10.2e} "
            + " ".join(marks)
            + f"  {curve.final_efficiency():7.1f}%"
            + f"  {invalid}"
        )
    return "\n".join(lines)
