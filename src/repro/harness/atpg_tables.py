"""Shared machinery for the ATPG result tables (Tables 2, 3 and 4).

Each table runs one engine over a set of original/retimed circuit pairs
and reports %FC, %FE and the retimed/original CPU ratio.  Table 2
(HITEC) additionally reports register counts and absolute CPU seconds;
Tables 3 and 4 follow the paper in reporting only coverage figures and
the CPU ratio.

Engines are referred to by registry name (``"hitec"``, ``"sest"``,
``"simbased"``) and constructed through
:func:`repro.atpg.registry.get_engine`; this module never branches on
engine names itself.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..atpg.registry import get_engine
from ..circuit.netlist import Circuit
from ..fault.analysis import (
    ExpandedResult,
    analyze_faults_cached,
    expand_result,
)
from ..lint import LintConfig, Severity, gate_circuit
from ..obs import Observability
from .config import HarnessConfig, select_target_faults
from .suite import CircuitPair, build_pair
from .tables import Column, Table, pct, ratio


@dataclasses.dataclass
class PairRun:
    """Engine results for one original/retimed pair.

    Both sides are :class:`~repro.fault.analysis.ExpandedResult`\\ s:
    the engine only targeted the analyzer's reduced fault list, but
    every number a table reads from here ranges over the full fault
    universe.
    """

    pair: CircuitPair
    original: ExpandedResult
    retimed: ExpandedResult

    @property
    def cpu_ratio(self) -> float:
        baseline = max(self.original.cpu_seconds, 1e-6)
        return self.retimed.cpu_seconds / baseline


def run_engine_on_circuit(
    circuit: Circuit,
    engine: str,
    config: HarnessConfig,
    obs: Optional[Observability] = None,
) -> ExpandedResult:
    """One engine × circuit run with the config's fault sampling.

    ``engine`` is a registry name resolved through
    :func:`repro.atpg.registry.get_engine`.  The circuit passes the
    pre-ATPG DRC gate first: in ``strict`` mode a finding at
    ``config.lint_fail_on`` severity aborts the run with
    :class:`repro.errors.LintError`; in ``warn`` mode the diagnostics
    are recorded in the global ledger, which the experiment driver
    appends to its report.

    The engine targets the static analyzer's reduced fault list (at
    ``config.collapse_level``, optionally sampled down to
    ``config.max_faults``); the result is then expanded back over the
    full fault universe — dominance-dropped and sampled-out classes are
    fault-simulated against the emitted test set, so the returned
    coverage numbers are exact whatever the level.
    """
    gate_circuit(
        circuit,
        mode=config.lint_mode,
        stage=f"pre-atpg:{circuit.name}",
        config=LintConfig(fail_on=Severity.parse(config.lint_fail_on)),
        obs=obs,
    )
    analysis = analyze_faults_cached(
        circuit, level=config.collapse_level, obs=obs
    )
    faults = select_target_faults(analysis, config)
    runner = get_engine(engine, circuit, budget=config.budget, obs=obs)
    result = runner.run(faults)
    return expand_result(result, analysis, circuit, obs=obs)


def run_pair(
    name: str,
    engine: str,
    config: HarnessConfig,
    obs: Optional[Observability] = None,
) -> PairRun:
    pair = build_pair(name, target_ratio=config.retime_target_ratio)
    original = run_engine_on_circuit(
        pair.original_circuit, engine, config, obs=obs
    )
    retimed = run_engine_on_circuit(
        pair.retimed_circuit, engine, config, obs=obs
    )
    return PairRun(pair=pair, original=original, retimed=retimed)


def pair_rows(name: str, run: PairRun) -> List[Dict]:
    """Table 2's two rows (original then retimed) for one pair run."""
    rows = [_hitec_row(name, run.pair.original_circuit, run.original)]
    retimed_row = _hitec_row(
        f"{name}.re", run.pair.retimed_circuit, run.retimed
    )
    retimed_row["cpu_ratio"] = run.cpu_ratio
    rows.append(retimed_row)
    return rows


def hitec_table_from_rows(rows: List[Dict]) -> Table:
    """Table 2's layout: one row per circuit (original then retimed)."""
    return Table(
        title="Table 2: HITEC ATPG results",
        columns=[
            Column("circuit", "circuit"),
            Column("dffs", "#DFF"),
            Column("fc", "%FC", pct),
            Column("fe", "%FE", pct),
            Column("cpu", "#CPU seconds", lambda v: f"{v:.1f}"),
            Column("cpu_ratio", "CPU ratio", ratio),
        ],
        rows=rows,
    )


def hitec_table(
    circuits: Tuple[str, ...], config: HarnessConfig
) -> Tuple[Table, List[PairRun]]:
    """Run HITEC over every pair and build Table 2."""
    rows: List[Dict] = []
    runs: List[PairRun] = []
    for name in circuits:
        run = run_pair(name, "hitec", config)
        runs.append(run)
        rows.extend(pair_rows(name, run))
    return hitec_table_from_rows(rows), runs


def _hitec_row(name: str, circuit: Circuit, result: ExpandedResult) -> Dict:
    return {
        "circuit": name,
        "dffs": circuit.num_dffs(),
        "fc": result.fault_coverage,
        "fe": result.fault_efficiency,
        "cpu": result.cpu_seconds,
    }


def coverage_row(name: str, run: PairRun) -> Dict:
    """Tables 3/4's single row for one pair run."""
    return {
        "circuit": name,
        "fc_orig": run.original.fault_coverage,
        "fe_orig": run.original.fault_efficiency,
        "fc_re": run.retimed.fault_coverage,
        "fe_re": run.retimed.fault_efficiency,
        "cpu_ratio": run.cpu_ratio,
    }


def coverage_table_from_rows(title: str, rows: List[Dict]) -> Table:
    """Tables 3/4's layout: one row per pair, coverages plus CPU ratio."""
    return Table(
        title=title,
        columns=[
            Column("circuit", "circuit"),
            Column("fc_orig", "%FC (orig)", pct),
            Column("fe_orig", "%FE (orig)", pct),
            Column("fc_re", "%FC (re)", pct),
            Column("fe_re", "%FE (re)", pct),
            Column("cpu_ratio", "CPU ratio", ratio),
        ],
        rows=rows,
    )


def coverage_ratio_table(
    title: str,
    circuits: Tuple[str, ...],
    engine: str,
    config: HarnessConfig,
) -> Tuple[Table, List[PairRun]]:
    """Run an engine over every pair and build a Table 3/4-shaped table."""
    rows: List[Dict] = []
    runs: List[PairRun] = []
    for name in circuits:
        run = run_pair(name, engine, config)
        runs.append(run)
        rows.append(coverage_row(name, run))
    return coverage_table_from_rows(title, rows), runs


def pair_counters(run: PairRun) -> Dict[str, Dict]:
    """Ledger counters for one pair run (both sides)."""
    return {
        "original": run.original.counters(),
        "retimed": run.retimed.counters(),
    }


def pair_lifecycle(run: PairRun) -> Dict[str, List[Dict]]:
    """Per-fault lifecycle records for one pair run (both sides),
    in the scoped shape ``repro.obs.coverage.lifecycle_core`` takes."""
    return {
        "original": run.original.fault_records,
        "retimed": run.retimed.fault_records,
    }
