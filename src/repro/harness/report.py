"""Markdown rendering for experiment tables.

`EXPERIMENTS.md` and downstream writeups embed harness results; this
module converts :class:`~repro.harness.tables.Table` objects (and
Figure 3 curve sets) into GitHub-flavored markdown.
"""

from __future__ import annotations

from typing import List, Sequence

from .figure3 import Curve
from .tables import Table


def table_to_markdown(table: Table) -> str:
    """Render a table as a GFM pipe table (title as a bold caption)."""
    headers = [column.title for column in table.columns]
    lines = [f"**{table.title}**", ""]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in table.rows:
        cells = [column.render(row) for column in table.columns]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def curves_to_markdown(curves: Sequence[Curve]) -> str:
    """Render Figure 3 curves as a markdown table of CPU-to-FE marks."""
    levels = (50.0, 75.0, 90.0, 95.0)
    headers = ["circuit", "density"] + [
        f"cpu@{int(level)}%" for level in levels
    ] + ["final FE"]
    lines = [
        "**Figure 3: ATPG performance as a function of density of "
        "encoding**",
        "",
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for curve in sorted(curves, key=lambda c: -c.density_of_encoding):
        cells = [curve.circuit_name, f"{curve.density_of_encoding:.2e}"]
        for level in levels:
            cpu = curve.cpu_to_reach(level)
            cells.append(f"{cpu:.1f}s" if cpu is not None else "—")
        cells.append(f"{curve.final_efficiency():.1f}%")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def preformatted(text: str) -> str:
    """Wrap raw harness output in a fenced code block."""
    return "```text\n" + text.rstrip("\n") + "\n```"
