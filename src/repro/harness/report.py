"""Report rendering: markdown tables and ledger-row assembly.

`EXPERIMENTS.md` and downstream writeups embed harness results; this
module converts :class:`~repro.harness.tables.Table` objects (and
Figure 3 curve sets) into GitHub-flavored markdown.

It also assembles the combined experiment report *from run-ledger
rows* (:func:`assemble_report`): the runner executes cells in any
order, on any number of workers, and this module reconstructs the
canonical Tables 1-8 + Figure 3 + DRC-summary report from whatever the
ledger recorded.  Quarantined cells become ``[aborted]`` placeholder
rows instead of exceptions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import dataclasses

from ..obs.coverage import (
    cell_records_from_ledger_rows,
    render_abort_forensics,
)
from ..obs.perf import render_effort_attribution
from ..obs.search import render_waste_attribution, waste_rows_from_ledger_rows
from . import ledger as ledger_mod
from .figure3 import Curve
from .ledger import TaskRecord
from .tables import Table


def table_to_markdown(table: Table) -> str:
    """Render a table as a GFM pipe table (title as a bold caption)."""
    headers = [column.title for column in table.columns]
    lines = [f"**{table.title}**", ""]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in table.rows:
        cells = [column.render(row) for column in table.columns]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def curves_to_markdown(curves: Sequence[Curve]) -> str:
    """Render Figure 3 curves as a markdown table of CPU-to-FE marks."""
    levels = (50.0, 75.0, 90.0, 95.0)
    headers = ["circuit", "density"] + [
        f"cpu@{int(level)}%" for level in levels
    ] + ["final FE", "invalid frac"]
    lines = [
        "**Figure 3: ATPG performance as a function of density of "
        "encoding**",
        "",
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for curve in sorted(curves, key=lambda c: -c.density_of_encoding):
        cells = [curve.circuit_name, f"{curve.density_of_encoding:.2e}"]
        for level in levels:
            cpu = curve.cpu_to_reach(level)
            cells.append(f"{cpu:.1f}s" if cpu is not None else "—")
        cells.append(f"{curve.final_efficiency():.1f}%")
        cells.append(
            f"{curve.invalid_fraction:.4f}"
            if curve.invalid_fraction is not None
            else "—"
        )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def preformatted(text: str) -> str:
    """Wrap raw harness output in a fenced code block."""
    return "```text\n" + text.rstrip("\n") + "\n```"


#: Prefix of the one report line carrying wall-clock time.
WALL_TIME_LINE_PREFIX = "total harness time: "


def science_text(report: str) -> str:
    """The report minus its wall-clock footer.

    The report analogue of :data:`repro.harness.ledger
    .WALL_TIME_FIELDS`: every line except the harness-time footer is a
    pure function of the ledger's science rows, so equivalence checks
    (serial vs parallel, cold vs warm cache) compare this text.
    """
    return "\n".join(
        line
        for line in report.splitlines()
        if not line.startswith(WALL_TIME_LINE_PREFIX)
    )


def assemble_report(
    config,
    records: List[TaskRecord],
    elapsed_seconds: Optional[float] = None,
) -> str:
    """Rebuild the canonical combined report from run-ledger rows.

    Rows are keyed to tasks of the canonical task graph, so the output
    is independent of cell completion order — ``jobs=1`` and ``jobs=8``
    runs of the same config produce byte-identical tables.  A cell with
    no successful record contributes ``[aborted]`` placeholder rows.
    """
    # Imported here: runner imports the table modules this module also
    # needs, keeping report importable from runner-free contexts.
    from . import figure3, table1, table2, table3, table4
    from . import table5, table6, table7, table8
    from .runner import SECTIONS, build_task_graph, wants

    graph = build_task_graph(config)
    completed = ledger_mod.completed_by_key(records, config.fingerprint())

    section_rows: Dict[str, List[dict]] = {s: [] for s in SECTIONS}
    curves: List[Curve] = []
    aborted_sections: List[str] = []
    lint_groups: List[List[dict]] = []
    for task in graph:
        record = completed.get(task.key)
        if record is None:
            if task.pair is not None:
                for section in task.tables:
                    if wants(config, section):
                        section_rows[section].append(
                            {"circuit": f"{task.pair} [aborted]"}
                        )
            else:
                aborted_sections.extend(task.tables)
            continue
        lint_groups.append(record.payload.get("lint", []))
        for section, rows in record.payload.get("tables", {}).items():
            section_rows[section].extend(rows)
        if task.kind == "figure3":
            curves = [
                Curve.from_dict(data)
                for data in record.payload.get("curves", [])
            ]

    builders = {
        "table1": table1.build_table,
        "table2": table2.build_table,
        "table3": table3.build_table,
        "table4": table4.build_table,
        "table5": table5.build_table,
        "table6": table6.build_table,
        "table7": table7.build_table,
        "table8": table8.build_table,
    }
    blocks: List[str] = []
    for section in SECTIONS:
        if not wants(config, section):
            continue
        if section in aborted_sections:
            blocks.append(
                f"[{section} aborted after retries; see the run ledger]"
            )
        elif section == "figure3":
            blocks.append(figure3.render(curves))
        else:
            blocks.append(builders[section](section_rows[section]).render())

    blocks.append(
        ledger_mod.render_lint_summary(
            ledger_mod.merge_lint_entries(lint_groups),
            title=f"Static analysis (DRC) gate [{config.lint_mode}]",
        )
    )
    # Effort attribution: deterministic search counters per cell, in
    # canonical task order (no wall fields, so the section stays
    # byte-identical across --jobs levels like the tables above).
    blocks.append(
        render_effort_attribution(
            completed[task.key].perf_record()
            for task in graph
            if task.key in completed
        )
    )
    # Search-waste attribution: invalid-state classification per cell,
    # joined with density of encoding from the same rows (also purely
    # deterministic — byte-identical across --jobs levels).
    blocks.append(
        render_waste_attribution(
            waste_rows_from_ledger_rows(
                dataclasses.asdict(completed[task.key])
                for task in graph
                if task.key in completed
            )
        )
    )
    # Coverage & abort forensics: per-cell detection provenance and the
    # abort-reason taxonomy from the lifecycle records (deterministic —
    # byte-identical across --jobs levels like the blocks above).
    blocks.append(
        render_abort_forensics(
            cell_records_from_ledger_rows(
                dataclasses.asdict(completed[task.key])
                for task in graph
                if task.key in completed
            )
        )
    )
    if elapsed_seconds is not None:
        blocks.append(f"total harness time: {elapsed_seconds:.0f}s")
    return "".join(block + "\n\n" for block in blocks)
