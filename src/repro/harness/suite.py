"""The experiment circuit suite: the paper's 16 original/retimed pairs.

Table 2 names each circuit ``<fsm>.<jedi-flag>.<script-flag>[.re]``;
this module synthesizes those circuits from the benchmark FSMs, retimes
them, and caches everything in-process so the eight table harnesses
share one build.

Retiming depth is selected per circuit to land the register growth in
the paper's observed band (the retimed circuits have 1.6x-5.6x the
original register count): the smallest backward-retiming depth whose
register count is at least ``target_ratio`` times the original, subject
to a hard ceiling.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..circuit.netlist import Circuit
from ..errors import ReproError
from ..fsm.benchmarks import PAPER_FSMS, benchmark_fsm
from ..fsm.encode import EncodingAlgorithm
from ..retime.core import RetimedCircuit, backward_retime
from ..synth.scripts import SCRIPT_DELAY, SCRIPT_RUGGED, SynthesisScript
from ..synth.synthesize import SynthesisResult, synthesize

_ALGORITHMS = {
    "ji": EncodingAlgorithm.INPUT_DOMINANT,
    "jo": EncodingAlgorithm.OUTPUT_DOMINANT,
    "jc": EncodingAlgorithm.COMBINED,
}
_SCRIPTS = {"sd": SCRIPT_DELAY, "sr": SCRIPT_RUGGED}

# The 16 circuits of Table 2, by paper name.
TABLE2_CIRCUITS: Tuple[str, ...] = (
    "dk16.ji.sd",
    "pma.jo.sd",
    "s510.jc.sd",
    "s510.jc.sr",
    "s510.ji.sd",
    "s510.ji.sr",
    "s510.jo.sr",
    "s820.jc.sd",
    "s820.jc.sr",
    "s820.ji.sr",
    "s820.jo.sd",
    "s820.jo.sr",
    "s832.jc.sr",
    "s832.jo.sr",
    "scf.ji.sd",
    "scf.jo.sd",
)

# Subsets used by the Attest/SEST tables (Tables 3-4).
TABLE3_CIRCUITS: Tuple[str, ...] = (
    "dk16.ji.sd",
    "pma.jo.sd",
    "s510.jc.sd",
    "s510.ji.sr",
    "s510.jo.sr",
)
TABLE4_CIRCUITS: Tuple[str, ...] = (
    "dk16.ji.sd",
    "pma.jo.sd",
    "s510.jc.sd",
    "s510.ji.sd",
    "s510.jo.sr",
)

# The density-sensitivity circuit (Table 7 / Figure 3).
TABLE7_CIRCUIT = "s510.jo.sr"


@dataclasses.dataclass
class CircuitPair:
    """One original circuit and its retimed sibling."""

    name: str  # paper-style, e.g. "s510.jo.sr"
    original: SynthesisResult
    retimed: RetimedCircuit

    @property
    def original_circuit(self) -> Circuit:
        return self.original.circuit

    @property
    def retimed_circuit(self) -> Circuit:
        return self.retimed.circuit


def parse_circuit_name(name: str) -> Tuple[str, str, str]:
    """Split ``fsm.jX.sY`` into its fields."""
    parts = name.split(".")
    if len(parts) != 3 or parts[1] not in _ALGORITHMS or parts[2] not in _SCRIPTS:
        raise ReproError(
            f"bad circuit name {name!r}; expected <fsm>.<ji|jo|jc>.<sd|sr>"
        )
    return parts[0], parts[1], parts[2]


_synthesis_cache: Dict[str, SynthesisResult] = {}
_pair_cache: Dict[Tuple[str, float], CircuitPair] = {}


def synthesize_named(name: str) -> SynthesisResult:
    """Build (and cache) one of the paper's named circuits."""
    if name in _synthesis_cache:
        return _synthesis_cache[name]
    fsm_name, jedi_flag, script_flag = parse_circuit_name(name)
    spec = PAPER_FSMS[fsm_name]
    result = synthesize(
        benchmark_fsm(fsm_name),
        _ALGORITHMS[jedi_flag],
        _SCRIPTS[script_flag],
        explicit_reset=spec.explicit_reset,
    )
    _synthesis_cache[name] = result
    return result


def select_retiming(
    circuit: Circuit,
    target_ratio: float = 3.5,
    max_ratio: float = 7.0,
    max_depth: int = 4,
) -> RetimedCircuit:
    """Pick the backward-retiming depth matching the paper's register
    growth band (smallest depth reaching ``target_ratio`` × original
    DFFs; the deepest non-exploding depth otherwise)."""
    original_dffs = circuit.num_dffs()
    best: Optional[RetimedCircuit] = None
    for depth in range(1, max_depth + 1):
        candidate = backward_retime(circuit, depth)
        dffs = candidate.circuit.num_dffs()
        if dffs == original_dffs:
            continue
        if dffs > original_dffs * max_ratio:
            break
        best = candidate
        if dffs >= original_dffs * target_ratio:
            break
    if best is None:
        raise ReproError(
            f"could not find a register-growing retiming for "
            f"{circuit.name!r}"
        )
    return best


def build_pair(name: str, target_ratio: float = 3.5) -> CircuitPair:
    """Synthesize + retime one named circuit (cached)."""
    key = (name, target_ratio)
    if key in _pair_cache:
        return _pair_cache[key]
    original = synthesize_named(name)
    retimed = select_retiming(original.circuit, target_ratio=target_ratio)
    pair = CircuitPair(name=name, original=original, retimed=retimed)
    _pair_cache[key] = pair
    return pair


def build_pairs(names: Tuple[str, ...]) -> List[CircuitPair]:
    return [build_pair(name) for name in names]


def clear_caches() -> None:
    """Drop all cached synthesis/retiming results (tests use this)."""
    from ..fault.analysis import clear_analysis_cache
    from ..sim.compile import clear_program_cache

    _synthesis_cache.clear()
    _pair_cache.clear()
    # Fault analyses and compiled simulation programs are keyed weakly
    # by circuit object, so clearing the synthesis caches would orphan
    # them anyway; drop them eagerly so a rebuilt circuit never aliases
    # stale derived state through an interned object.
    clear_analysis_cache()
    clear_program_cache()
