"""Progress and report output for the experiment driver.

``run_all`` used to write bare ``print`` calls to a stream; everything
now goes through one :class:`Reporter`, built on :mod:`logging`, so

* ``--quiet`` suppresses progress chatter while keeping the report and
  profile summaries (the run's actual product);
* embedding applications can attach their own handlers to the
  ``repro.harness`` logger instead of capturing stdout;
* the driver has exactly one output seam to test.

The reporter never configures the root logger and removes its handler
on :meth:`close`, so repeated runs (and pytest) don't accumulate
handlers or duplicate lines.
"""

from __future__ import annotations

import logging
from typing import Optional, TextIO

LOGGER_NAME = "repro.harness"

#: Progress lines use INFO; report/profile text uses WARNING so a
#: quiet reporter (level=WARNING) still emits it.
PROGRESS_LEVEL = logging.INFO
REPORT_LEVEL = logging.WARNING


class Reporter:
    """Routes experiment output through the ``repro.harness`` logger.

    ``stream=None`` (the library default) attaches no handler: output
    goes wherever the embedding application pointed the logger, or
    nowhere — matching the old ``stream=None`` silence.
    """

    def __init__(
        self, stream: Optional[TextIO] = None, quiet: bool = False
    ):
        self.quiet = quiet
        self._logger = logging.getLogger(LOGGER_NAME)
        self._handler: Optional[logging.Handler] = None
        if stream is not None:
            handler = logging.StreamHandler(stream)
            handler.setFormatter(logging.Formatter("%(message)s"))
            handler.setLevel(
                REPORT_LEVEL if quiet else PROGRESS_LEVEL
            )
            self._logger.addHandler(handler)
            # The logger itself stays wide open; filtering is purely
            # per-handler so other attached handlers are unaffected.
            self._logger.setLevel(PROGRESS_LEVEL)
            self._handler = handler

    def progress(self, line: str) -> None:
        """One transient status line (suppressed by ``--quiet``)."""
        self._logger.log(PROGRESS_LEVEL, "%s", line)

    def report(self, text: str) -> None:
        """Product output: tables, rollups — emitted even when quiet."""
        self._logger.log(REPORT_LEVEL, "%s", text)

    def close(self) -> None:
        """Detach (and flush) the handler this reporter attached."""
        if self._handler is not None:
            self._handler.flush()
            self._logger.removeHandler(self._handler)
            self._handler = None

    def __enter__(self) -> "Reporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
