"""Experiment harnesses regenerating the paper's Tables 1-8 and Figure 3.

Usage::

    from repro.harness import HarnessConfig, table2
    table, runs = table2.generate(HarnessConfig.smoke())
    print(table.render())

or from the command line: ``python -m repro.harness smoke``.
"""

from .config import HarnessConfig, sample_faults, select_target_faults
from .suite import (
    TABLE2_CIRCUITS,
    TABLE3_CIRCUITS,
    TABLE4_CIRCUITS,
    TABLE7_CIRCUIT,
    CircuitPair,
    build_pair,
    build_pairs,
    clear_caches,
    select_retiming,
    synthesize_named,
)
from .tables import Column, Table
from . import (
    figure3,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)
from .experiment import run_all
from .ledger import TaskRecord, load_records
from .reporting import Reporter
from .report import (
    assemble_report,
    curves_to_markdown,
    preformatted,
    table_to_markdown,
)
from .runner import RunResult, TaskSpec, build_task_graph, run_experiment

__all__ = [
    "CircuitPair",
    "Column",
    "HarnessConfig",
    "Reporter",
    "RunResult",
    "TaskRecord",
    "TaskSpec",
    "assemble_report",
    "build_task_graph",
    "load_records",
    "run_experiment",
    "TABLE2_CIRCUITS",
    "TABLE3_CIRCUITS",
    "TABLE4_CIRCUITS",
    "TABLE7_CIRCUIT",
    "Table",
    "build_pair",
    "build_pairs",
    "clear_caches",
    "figure3",
    "run_all",
    "sample_faults",
    "select_retiming",
    "select_target_faults",
    "synthesize_named",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table_to_markdown",
    "curves_to_markdown",
    "preformatted",
]
