"""Plain-text table rendering for the experiment harnesses.

Every table harness returns a :class:`Table`: an ordered list of rows
(dicts) plus column metadata, renderable as the aligned ASCII tables the
benches print and EXPERIMENTS.md embeds.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

from .._util import format_engineering


@dataclasses.dataclass
class Column:
    """One table column: key into the row dicts plus formatting."""

    key: str
    title: str
    fmt: Optional[Callable[[Any], str]] = None

    def render(self, row: Dict[str, Any]) -> str:
        value = row.get(self.key, "")
        if value is None or value == "":
            return ""
        if self.fmt is not None:
            return self.fmt(value)
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)


@dataclasses.dataclass
class Table:
    """A rendered experiment table."""

    title: str
    columns: List[Column]
    rows: List[Dict[str, Any]]

    def render(self) -> str:
        headers = [c.title for c in self.columns]
        body = [
            [column.render(row) for column in self.columns]
            for row in self.rows
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in body))
            if body
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for rendered in body:
            lines.append(
                "  ".join(v.ljust(w) for v, w in zip(rendered, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def eng(value: float) -> str:
    """Engineering/scientific formatting matching the paper's tables."""
    return format_engineering(value)


def pct(value: float) -> str:
    return f"{value:.1f}"


def ratio(value: float) -> str:
    return f"{value:.1f}"
