"""Run every experiment and emit an EXPERIMENTS-style report.

``python -m repro.harness`` regenerates all eight tables plus Figure 3
at the chosen effort level and prints them; the repository's
EXPERIMENTS.md embeds one such run.

Execution is delegated to :mod:`repro.harness.runner`: the experiment
is decomposed into crash-isolated cells, executed serially
(``jobs=1``) or on a spawned-worker pool, recorded in a durable JSONL
ledger under ``<runs_dir>/<run-id>/``, and the report is assembled
from ledger rows — so an interrupted run can be resumed with
``resume=<run-id>`` without recomputing completed cells.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Optional

from .config import HarnessConfig
from .report import assemble_report
from .runner import RunResult, run_experiment


def run_all(
    config: Optional[HarnessConfig] = None,
    stream=None,
    jobs: Optional[int] = None,
    resume: Optional[str] = None,
    runs_dir: Optional[str] = None,
) -> str:
    """Regenerate every table/figure; returns the combined report text.

    ``jobs``/``resume``/``runs_dir`` override the corresponding config
    fields.  Progress lines go to ``stream`` as cells complete; the
    report is also written to ``<run_dir>/report.txt``.
    """
    config = config or HarnessConfig.default()
    overrides = {}
    if jobs is not None:
        overrides["jobs"] = jobs
    if resume is not None:
        overrides["resume"] = resume
    if runs_dir is not None:
        overrides["runs_dir"] = runs_dir
    if overrides:
        config = dataclasses.replace(config, **overrides)

    def emit(line: str) -> None:
        if stream is not None:
            print(line, file=stream, flush=True)

    start = time.time()
    result: RunResult = run_experiment(config, emit=emit)
    report = assemble_report(
        config, result.records, elapsed_seconds=time.time() - start
    )
    report_path = os.path.join(result.run_dir, "report.txt")
    with open(report_path, "w", encoding="utf-8") as handle:
        handle.write(report)
    emit(f"[runner] run {result.run_id} complete; report at {report_path}")
    if stream is not None:
        print(report, file=stream, flush=True)
    return report
