"""Run every experiment and emit an EXPERIMENTS-style report.

``python -m repro.harness`` regenerates all eight tables plus Figure 3
at the chosen effort level and prints them; the repository's
EXPERIMENTS.md embeds one such run.

Execution is delegated to :mod:`repro.harness.runner`: the experiment
is decomposed into crash-isolated cells, executed serially
(``jobs=1``) or on a spawned-worker pool, recorded in a durable JSONL
ledger under ``<runs_dir>/<run-id>/``, and the report is assembled
from ledger rows — so an interrupted run can be resumed with
``resume=<run-id>`` without recomputing completed cells.

Output goes through :class:`repro.harness.reporting.Reporter`
(logging-based): progress lines are suppressed by ``quiet=True``, the
report and ``profile=True`` summaries always print.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Optional

from ..obs import (
    merge_dumps,
    read_trace_jsonl,
    render_metrics_summary,
    render_rollup,
)
from ..obs.perf import (
    collect_environment,
    snapshot_from_ledger,
    write_snapshot,
)
from .config import HarnessConfig
from .ledger import completed_by_key
from .report import assemble_report
from .reporting import Reporter
from .runner import RunResult, run_experiment


def run_all(
    config: Optional[HarnessConfig] = None,
    stream=None,
    jobs: Optional[int] = None,
    resume: Optional[str] = None,
    runs_dir: Optional[str] = None,
    profile: Optional[bool] = None,
    quiet: bool = False,
    reporter: Optional[Reporter] = None,
    perf_snapshot: Optional[str] = None,
    store_dir: Optional[str] = None,
    service_socket: Optional[str] = None,
) -> str:
    """Regenerate every table/figure; returns the combined report text.

    ``jobs``/``resume``/``runs_dir``/``profile``/``store_dir``/
    ``service_socket`` override the corresponding config fields.
    Progress lines go to ``stream`` (via the ``repro.harness`` logger)
    as cells complete; the report is also written to
    ``<run_dir>/report.txt``.  With profiling on, the assembled
    ``trace.jsonl`` is summarized as a per-phase rollup plus a metrics
    table after the report.  ``perf_snapshot`` names a file to write
    the run's :class:`~repro.obs.perf.PerfSnapshot` to (one PerfRecord
    per completed cell, with environment provenance).

    With ``store_dir`` set the run is cache-first: cells whose
    canonical key is already stored are served from the cache (and
    fresh results stored back), producing byte-identical reports in a
    fraction of the time; ``service_socket`` additionally sends cache
    misses to a running daemon instead of a local pool (see
    :mod:`repro.harness.cache`).
    """
    config = config or HarnessConfig.default()
    overrides = {}
    if jobs is not None:
        overrides["jobs"] = jobs
    if resume is not None:
        overrides["resume"] = resume
    if runs_dir is not None:
        overrides["runs_dir"] = runs_dir
    if profile is not None:
        overrides["profile"] = profile
    if store_dir is not None:
        overrides["store_dir"] = store_dir
    if service_socket is not None:
        overrides["service_socket"] = service_socket
    if overrides:
        config = dataclasses.replace(config, **overrides)

    owns_reporter = reporter is None
    reporter = reporter or Reporter(stream=stream, quiet=quiet)
    try:
        start = time.time()
        result: RunResult = run_experiment(config, emit=reporter.progress)
        report = assemble_report(
            config, result.records, elapsed_seconds=time.time() - start
        )
        report_path = os.path.join(result.run_dir, "report.txt")
        with open(report_path, "w", encoding="utf-8") as handle:
            handle.write(report)
        reporter.progress(
            f"[runner] run {result.run_id} complete; "
            f"report at {report_path}"
        )
        if result.service_file:
            reporter.progress(
                f"[service] cache session summary at {result.service_file}"
            )
        reporter.report(report)
        if result.trace_file:
            reporter.report(_profile_summary(config, result))
        if perf_snapshot:
            snapshot = snapshot_from_ledger(
                result.ledger_file,
                environment=collect_environment(
                    jobs=config.jobs,
                    fingerprint=config.fingerprint(),
                ),
                fingerprint=config.fingerprint(),
            )
            write_snapshot(perf_snapshot, snapshot)
            reporter.progress(
                f"[runner] perf snapshot written to {perf_snapshot}"
            )
        return report
    finally:
        if owns_reporter:
            reporter.close()


def _profile_summary(config: HarnessConfig, result: RunResult) -> str:
    """Per-phase span rollup + merged metrics table for a profiled run."""
    spans = read_trace_jsonl(result.trace_file)
    sections = [
        render_rollup(
            spans,
            top=15,
            title=f"Profile: hottest span paths ({result.run_id})",
        )
    ]
    dumps = [
        record.metrics
        for record in completed_by_key(
            result.records, config.fingerprint()
        ).values()
        if record.metrics
    ]
    if dumps:
        sections.append(
            render_metrics_summary(
                merge_dumps(dumps), title="Metrics (all tasks merged)"
            )
        )
    return "\n\n".join(sections)
