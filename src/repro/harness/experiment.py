"""Run every experiment and emit an EXPERIMENTS-style report.

``python -m repro.harness`` regenerates all eight tables plus Figure 3
at the chosen effort level and prints them; the repository's
EXPERIMENTS.md embeds one such run.
"""

from __future__ import annotations

import io
import time
from typing import Optional

from ..lint import GLOBAL_LEDGER
from .config import HarnessConfig
from . import (
    figure3,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)


def run_all(
    config: Optional[HarnessConfig] = None, stream=None
) -> str:
    """Regenerate every table/figure; returns the combined report text."""
    config = config or HarnessConfig.default()
    out = io.StringIO()

    def emit(text: str) -> None:
        print(text, file=out)
        print("", file=out)
        if stream is not None:
            print(text, file=stream, flush=True)
            print("", file=stream, flush=True)

    start = time.time()
    GLOBAL_LEDGER.clear()  # diagnostics below describe THIS run only
    emit(table1.generate().render())

    t2, runs = table2.generate(config)
    emit(t2.render())

    t3, _ = table3.generate(config)
    emit(t3.render())

    t4, _ = table4.generate(config)
    emit(t4.render())

    emit(table5.generate(config).render())
    emit(table6.generate(config, runs=runs).render())
    emit(table7.generate(config).render())

    # Table 8 reuses Table 2's runs where its circuits overlap.
    circuits = config.circuits or table8.DEFAULT_CIRCUITS
    available = {run.pair.name: run for run in runs}
    t8_runs = [available[name] for name in circuits if name in available]
    if t8_runs:
        emit(table8.generate(config, runs=t8_runs).render())
    else:
        emit(table8.generate(config).render())

    emit(figure3.render(figure3.generate(config)))
    # Record the DRC diagnostics every table above ran under (pre-ATPG
    # gate, mode per config.lint_mode).
    emit(
        GLOBAL_LEDGER.render_summary(
            title=f"Static analysis (DRC) gate [{config.lint_mode}]"
        )
    )
    emit(f"total harness time: {time.time() - start:.0f}s")
    return out.getvalue()
