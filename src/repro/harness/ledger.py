"""Durable JSONL run ledger for the experiment runner.

Every task attempt the runner makes — success, crash, timeout or
quarantine — is appended as one JSON line to
``<runs_dir>/<run-id>/ledger.jsonl``.  The ledger is the run's single
source of truth: the final report is assembled *from ledger rows*, and
``--resume <run-id>`` replays it to skip completed cells.

Record schema (one JSON object per line)::

    {
      "v": 2,                     # record version
      "key": "table2:hitec:dk16.ji.sd",
      "kind": "hitec_pair",       # task kind (see runner.TaskSpec)
      "pair": "dk16.ji.sd",       # circuit pair, null for global tasks
      "engine": "hitec",          # engine, null for non-ATPG tasks
      "tables": ["table2", "table6", "table8"],
      "fingerprint": "…",         # HarnessConfig.fingerprint()
      "attempt": 0,               # 0 = first try
      "budget_scale": 1.0,        # effort multiplier this attempt ran at
      "outcome": "ok",            # ok | crashed | timeout | quarantined
      "wall_seconds": 1.3,        # wall clock of the attempt
      "peak_rss_kb": 51234,       # worker peak RSS (ru_maxrss)
      "counters": {...},          # dotted AtpgResult counters (see
                                  #   DESIGN.md "Metric naming")
      "metrics": {...},           # MetricsRegistry.dump() of the attempt
      "perf": {...},              # deterministic PerfRecord core:
                                  #   schema + flattened counters
                                  #   (repro.obs.perf; ok rows only)
      "search": {...},            # deterministic search-observatory
                                  #   core: schema + the search.*
                                  #   counter subset per scope
                                  #   (repro.obs.search; ok ATPG rows)
      "lifecycle": {...},         # deterministic per-fault lifecycle
                                  #   core: schema + records per scope
                                  #   (repro.obs.coverage; ok ATPG rows)
      "payload": {...},           # table rows + lint entries (ok only)
      "error": "…"                # traceback summary (failures only)
    }

Version history: v1 rows used flat counter keys (``backtracks``,
``total_faults`` …) and had no ``metrics`` field; support for
normalizing them was retired with the service-layer redesign —
:data:`MIN_RECORD_VERSION` is 2 and :meth:`TaskRecord.from_dict`
rejects v1 rows (``load_records`` counts them with the torn lines), so
a pre-v2 ledger resumes as if empty instead of resuming with
mis-spelled counters.  v2 rows had no ``perf`` field; loading
synthesizes it from the counters, so pre-perf ledgers feed the
perf-snapshot and diff tooling unchanged.  v3 rows had no ``search``
field; loading synthesizes it the same way (old rows have no
``search.*`` counters, so it is usually empty).  v4 rows had no
``lifecycle`` field; loading synthesizes an empty one (per-fault
records cannot be reconstructed from counters — old rows simply have
no forensics).  v5 rows are also what the :mod:`repro.service`
content-addressed store holds — a cache hit replays the stored row
into the run ledger verbatim (the service key schema was bumped
alongside v5, so stores holding lifecycle-less v4 rows miss and
recompute instead of silently serving rows without forensics).  The
``perf``, ``search`` and ``lifecycle`` payloads hold only
deterministic fields — wall seconds and peak RSS stay in the
designated wall-time columns — keeping rows byte-identical across
``--jobs`` levels modulo :data:`WALL_TIME_FIELDS`.

A run killed mid-write leaves a torn final line; :func:`load_records`
tolerates any undecodable line (counting it) so a resumed run can pick
up from the last durable record.
"""

from __future__ import annotations

import dataclasses
import json
import os
import resource
import time
import uuid
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..lint.gate import _SUMMARY_DETAIL_LIMIT, LintLedger
from ..lint.severity import Severity
from ..obs.perf import PerfRecord, deterministic_core, record_from_ledger_row
from ..obs.search import search_core

LEDGER_NAME = "ledger.jsonl"
RECORD_VERSION = 5
#: Oldest record version still loadable (v1's flat counter keys are no
#: longer normalized; see the version history above).
MIN_RECORD_VERSION = 2

#: Ledger fields that vary run-to-run even for identical science
#: (excluded by the serial-vs-parallel equivalence tests).
WALL_TIME_FIELDS = ("wall_seconds", "peak_rss_kb")


@dataclasses.dataclass
class TaskRecord:
    """One task attempt, as persisted in the ledger."""

    key: str
    kind: str
    fingerprint: str
    outcome: str  # ok | crashed | timeout | quarantined
    pair: Optional[str] = None
    engine: Optional[str] = None
    tables: Tuple[str, ...] = ()
    attempt: int = 0
    budget_scale: float = 1.0
    wall_seconds: float = 0.0
    peak_rss_kb: int = 0
    counters: Dict[str, Any] = dataclasses.field(default_factory=dict)
    metrics: Dict[str, Any] = dataclasses.field(default_factory=dict)
    perf: Dict[str, Any] = dataclasses.field(default_factory=dict)
    search: Dict[str, Any] = dataclasses.field(default_factory=dict)
    lifecycle: Dict[str, Any] = dataclasses.field(default_factory=dict)
    payload: Dict[str, Any] = dataclasses.field(default_factory=dict)
    error: str = ""

    def to_json(self) -> str:
        data = dataclasses.asdict(self)
        data["tables"] = list(self.tables)
        data["v"] = RECORD_VERSION
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaskRecord":
        data = dict(data)
        version = data.pop("v", RECORD_VERSION)
        if version < MIN_RECORD_VERSION:
            raise ValueError(
                f"ledger record version {version} predates "
                f"MIN_RECORD_VERSION={MIN_RECORD_VERSION} (v1 flat "
                "counter keys are no longer supported)"
            )
        data["tables"] = tuple(data.get("tables") or ())
        # Pre-v3 rows had no perf payload; synthesize the deterministic
        # core from the counters so old ledgers feed the perf tooling
        # like new ones.
        if version < 3 and data.get("outcome") == "ok":
            data["perf"] = deterministic_core(data.get("counters") or {})
        # Pre-v4 rows had no search payload; synthesize it so old
        # ledgers feed the search observatory uniformly (pre-search
        # counters have no search.* keys, so this is usually empty).
        if version < 4 and data.get("outcome") == "ok":
            data["search"] = search_core(data.get("counters") or {})
        # Pre-v5 rows had no lifecycle payload, and per-fault records
        # cannot be synthesized from counters — old rows load with
        # empty forensics.
        if version < 5:
            data["lifecycle"] = {}
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def perf_record(self) -> PerfRecord:
        """The full :class:`~repro.obs.perf.PerfRecord` of this attempt
        (deterministic core + the row's wall/RSS metadata)."""
        return record_from_ledger_row(dataclasses.asdict(self))


def new_run_id() -> str:
    """Sortable-by-start-time unique run id."""
    return time.strftime("%Y%m%d-%H%M%S") + "-" + uuid.uuid4().hex[:6]


def run_directory(runs_dir: str, run_id: str) -> str:
    return os.path.join(runs_dir, run_id)


def ledger_path(runs_dir: str, run_id: str) -> str:
    return os.path.join(run_directory(runs_dir, run_id), LEDGER_NAME)


def append_record(path: str, record: TaskRecord) -> None:
    """Durably append one record (flush + fsync: a SIGKILL immediately
    after return must not lose the row)."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(record.to_json() + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def terminate_torn_tail(path: str) -> None:
    """Append a newline if the ledger's final line is unterminated.

    A run killed mid-append leaves a partial last line with no trailing
    newline; appending to it directly would glue the next record onto
    the torn line and corrupt *both*.  Called once before resuming.
    """
    if not os.path.exists(path) or os.path.getsize(path) == 0:
        return
    with open(path, "rb+") as handle:
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) != b"\n":
            handle.write(b"\n")


def load_records(path: str) -> Tuple[List[TaskRecord], int]:
    """Read every decodable record; returns ``(records, torn_lines)``.

    A line that fails to parse (torn tail of a killed run, stray
    garbage) is skipped and counted instead of raising — resume must
    survive exactly that state.
    """
    records: List[TaskRecord] = []
    torn = 0
    if not os.path.exists(path):
        return records, torn
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                records.append(TaskRecord.from_dict(data))
            except (ValueError, TypeError):
                torn += 1
    return records, torn


def completed_by_key(
    records: Iterable[TaskRecord], fingerprint: Optional[str] = None
) -> Dict[str, TaskRecord]:
    """Latest successful record per task key (optionally fingerprint-
    filtered); these are the cells a resumed run skips."""
    completed: Dict[str, TaskRecord] = {}
    for record in records:
        if record.outcome != "ok":
            continue
        if fingerprint is not None and record.fingerprint != fingerprint:
            continue
        completed[record.key] = record
    return completed


def quarantined_keys(records: Iterable[TaskRecord]) -> List[str]:
    seen: List[str] = []
    for record in records:
        if record.outcome == "quarantined" and record.key not in seen:
            seen.append(record.key)
    return seen


def peak_rss_kb() -> int:
    """This process's peak resident set size (ru_maxrss is KiB on
    Linux, bytes on macOS — the ledger stores the raw value)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


# ---------------------------------------------------------------------------
# Lint-ledger transport: workers serialize their process-local
# GLOBAL_LEDGER into the task payload; the parent merges the per-task
# groups (in canonical task order, replace-on-repeated-stage, exactly
# like LintLedger.record) and renders the same summary text the serial
# harness used to produce.


def serialize_lint_ledger(ledger: LintLedger) -> List[Dict[str, Any]]:
    entries = []
    for entry in ledger.entries:
        report = entry.report
        worst = report.worst()
        entries.append(
            {
                "stage": entry.stage,
                "findings": len(report),
                "counts": report.counts(),
                "worst": str(worst) if worst is not None else None,
                "flagged": [
                    str(diag)
                    for diag in report.at_or_above(Severity.WARNING)
                ],
            }
        )
    return entries


def merge_lint_entries(
    groups: Iterable[List[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Concatenate per-task entry groups with LintLedger's replace-on-
    repeated-stage semantics (first occurrence keeps its position)."""
    merged: List[Dict[str, Any]] = []
    position: Dict[str, int] = {}
    for group in groups:
        for entry in group:
            stage = entry["stage"]
            if stage in position:
                merged[position[stage]] = entry
            else:
                position[stage] = len(merged)
                merged.append(entry)
    return merged


def render_lint_summary(
    entries: List[Dict[str, Any]],
    title: str = "Static analysis (DRC) gate",
) -> str:
    """Byte-compatible with :meth:`LintLedger.render_summary`."""
    if not entries:
        return f"{title}: no circuits gated"
    totals = {str(s): 0 for s in Severity}
    for entry in entries:
        for severity, count in entry["counts"].items():
            totals[severity] += count
    lines = [
        f"{title}: {len(entries)} circuit(s) analyzed — "
        + ", ".join(
            f"{totals[str(s)]} {s}(s)" for s in reversed(list(Severity))
        )
    ]
    for entry in entries:
        line = f"  {entry['stage']}: {entry['findings']} finding(s)"
        if entry["worst"]:
            line += f", worst={entry['worst']}"
        lines.append(line)
        flagged = entry["flagged"]
        for diag in flagged[:_SUMMARY_DETAIL_LIMIT]:
            lines.append(f"    {diag}")
        if len(flagged) > _SUMMARY_DETAIL_LIMIT:
            lines.append(
                f"    ... {len(flagged) - _SUMMARY_DETAIL_LIMIT} more"
            )
    return "\n".join(lines)
