"""Table 5: structural attributes of each circuit (orig vs retimed).

The paper's point: max sequential depth and max cycle length are
*invariant* under retiming (Theorems 2 and 4), while the DFF-subset
cycle count grows (a counting artifact, Figure 2) — so none of the
traditional structural explanations account for the ATPG blowup.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis.cycles import count_dff_cycles
from ..analysis.seqdepth import sequential_depth_report
from .config import HarnessConfig
from .suite import TABLE2_CIRCUITS, build_pair
from .tables import Column, Table


def row_for_pair(name: str, config: HarnessConfig) -> dict:
    """One circuit pair's structural-attribute row (picklable cell)."""
    pair = build_pair(name, target_ratio=config.retime_target_ratio)
    depth_orig = sequential_depth_report(pair.original_circuit)
    depth_re = sequential_depth_report(pair.retimed_circuit)
    cycles_orig = count_dff_cycles(pair.original_circuit)
    cycles_re = count_dff_cycles(pair.retimed_circuit)
    return {
        "circuit": name,
        "depth_orig": depth_orig.depth,
        "maxlen_orig": cycles_orig.max_cycle_length,
        "cycles_orig": cycles_orig.num_cycles,
        "depth_re": depth_re.depth,
        "maxlen_re": cycles_re.max_cycle_length,
        "cycles_re": cycles_re.num_cycles,
        "invariant": (
            "yes"
            if depth_orig.depth == depth_re.depth
            and cycles_orig.max_cycle_length == cycles_re.max_cycle_length
            else "NO"
        ),
    }


def generate(
    config: Optional[HarnessConfig] = None,
) -> Table:
    config = config or HarnessConfig.default()
    circuits = config.circuits or TABLE2_CIRCUITS
    return build_table([row_for_pair(name, config) for name in circuits])


def build_table(rows: List[dict]) -> Table:
    return Table(
        title="Table 5: Structural attributes of each circuit",
        columns=[
            Column("circuit", "circuit"),
            Column("depth_orig", "max seq depth (orig)"),
            Column("maxlen_orig", "max cycle length (orig)"),
            Column("cycles_orig", "#cycles (orig)"),
            Column("depth_re", "max seq depth (re)"),
            Column("maxlen_re", "max cycle length (re)"),
            Column("cycles_re", "#cycles (re)"),
            Column("invariant", "depth/length invariant"),
        ],
        rows=rows,
    )
