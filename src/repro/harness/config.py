"""Harness configuration: how much effort each table regeneration spends.

The paper burned >5000 CPU hours on a DECstation farm; the harness
scales that to minutes while preserving every *relative* observation
(who wins, roughly by what factor, where the collapses happen).  Three
presets:

* ``smoke``  — seconds per table; used by the pytest benchmarks so the
  whole suite regenerates quickly.
* ``default`` — a few minutes per ATPG table; what EXPERIMENTS.md
  records.
* ``heavy``  — larger budgets for closer-to-paper abort behavior.
* ``quick``  — smoke budgets with the deterministic virtual clock, for
  reproducible profiling (``--quick --profile`` traces are
  byte-identical across ``--jobs`` levels).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple

from ..atpg.result import EffortBudget
from ..service import keys as service_keys


@dataclasses.dataclass
class HarnessConfig:
    """Effort knobs shared by the table harnesses."""

    budget: EffortBudget
    # Circuits with more collapsed faults than this get a deterministic
    # fault sample (classical practice for very large circuits; scf's
    # synthesized stand-in is several thousand gates).
    max_faults: int = 800
    fault_sample_seed: int = 97
    # Limit the Table 2 suite (None = all 16 pairs).
    circuits: Optional[Tuple[str, ...]] = None
    retime_target_ratio: float = 3.5
    # Pre-ATPG DRC gate: "warn" records diagnostics in the run report,
    # "strict" aborts the experiment on an error-severity finding,
    # "off" skips the analyzer.
    lint_mode: str = "warn"
    # Severity at which the strict gate aborts (note|warning|error).
    lint_fail_on: str = "error"
    # Limit which report sections the runner regenerates (None = all of
    # table1..table8 plus figure3).  Section names follow the task
    # graph: "table2" implies the HITEC runs that also feed tables 6/8.
    tables: Optional[Tuple[str, ...]] = None
    # Static fault-analysis level fed to the engines (repro.fault
    # .analysis): "equiv" = equivalence classes only, the default adds
    # dominance/checkpoint reduction.  Reports always expand over the
    # full fault universe, so tables from either level agree fault-for-
    # fault; the level changes search effort, not reported coverage.
    collapse_level: str = "equiv+dom+checkpoint"

    # ---- execution knobs (repro.harness.runner) ----------------------
    # These shape *how* cells run, never *what* they compute, so they
    # are excluded from fingerprint() and resuming a run with different
    # execution knobs is legal.
    jobs: int = 1  # worker processes; 1 = in-process serial
    task_timeout_seconds: Optional[float] = None  # per-task wall clock
    max_task_retries: int = 1  # extra attempts before quarantine
    retry_budget_scale: float = 0.5  # budget shrink factor per retry
    runs_dir: str = "runs"  # where run ledgers live
    resume: Optional[str] = None  # run id to resume
    # Record metrics + trace spans per task and assemble the run's
    # trace.jsonl.  Observability never feeds the science payload, so
    # this is an execution knob: profiled and unprofiled runs produce
    # identical table rows and may resume each other's ledgers.
    profile: bool = False
    # Test-only fault-injection hook: "pkg.module:function", called in
    # the worker as hook(task, config) before the cell executes.
    task_hook: Optional[str] = None
    # Content-addressed result store (repro.service.store): cells whose
    # cell_key is already present are served from cache instead of
    # recomputed.  Cache-served rows are byte-identical to computed
    # ones, so this is pure execution policy.
    store_dir: Optional[str] = None
    # Unix-domain socket of a running service daemon; cache misses are
    # submitted there instead of executing in this process's pool.
    service_socket: Optional[str] = None

    #: Fields that change experiment results (everything else is
    #: execution policy).
    SCIENCE_FIELDS = (
        "budget",
        "max_faults",
        "fault_sample_seed",
        "circuits",
        "retime_target_ratio",
        "lint_mode",
        "lint_fail_on",
        "tables",
        "collapse_level",
    )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (inverse of :meth:`from_dict`); tuples become
        lists, which from_dict restores."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HarnessConfig":
        data = dict(data)
        data["budget"] = EffortBudget(**data["budget"])
        for field in ("circuits", "tables"):
            if data.get(field) is not None:
                data[field] = tuple(data[field])
        return cls(**data)

    def fingerprint(self) -> str:
        """Hash of every result-affecting field.

        Ledger rows record this; ``--resume`` refuses to mix rows
        produced under a different science configuration.  Delegates to
        :func:`repro.service.keys.config_fingerprint` — the same schema
        keys the content-addressed result cache, so resume and cache
        can never disagree about what "same configuration" means.
        """
        return service_keys.config_fingerprint(self)

    @classmethod
    def smoke(cls) -> "HarnessConfig":
        return cls(
            budget=EffortBudget(
                max_backtracks=200,
                max_frames=4,
                max_justify_depth=10,
                max_preimages=3,
                per_fault_seconds=0.5,
                total_seconds=40.0,
                random_sequences=16,
                random_length=25,
            ),
            max_faults=250,
            circuits=("dk16.ji.sd", "s820.jc.sr"),
        )

    @classmethod
    def quick(cls) -> "HarnessConfig":
        """Smoke effort on the deterministic virtual clock — the preset
        behind ``--quick``; its traces are identical at any --jobs."""
        config = cls.smoke()
        return dataclasses.replace(
            config,
            budget=dataclasses.replace(
                config.budget, deterministic_clock=True
            ),
        )

    @classmethod
    def default(cls) -> "HarnessConfig":
        return cls(
            budget=EffortBudget(
                max_backtracks=600,
                max_frames=6,
                max_justify_depth=16,
                max_preimages=4,
                per_fault_seconds=2.0,
                total_seconds=180.0,
                random_sequences=48,
                random_length=40,
            ),
            max_faults=600,
        )

    @classmethod
    def heavy(cls) -> "HarnessConfig":
        return cls(budget=EffortBudget.paper(), max_faults=2000)


def sample_faults(faults, config: HarnessConfig):
    """Deterministic fault sample when the list exceeds the cap."""
    from .._util import make_rng

    if len(faults) <= config.max_faults:
        return list(faults)
    rng = make_rng(config.fault_sample_seed)
    indices = sorted(rng.sample(range(len(faults)), config.max_faults))
    return [faults[i] for i in indices]


def select_target_faults(analysis, config: HarnessConfig):
    """The engine's target list for one analyzed circuit.

    The sample is always drawn from the *equivalence-level* candidates
    (classes minus provably-untestable ones) and dominance pruning is
    applied afterwards, so the ``equiv+dom+checkpoint`` level targets a
    strict subset of what ``equiv`` targets under the same seed.  That
    subset property is what makes effort comparisons across collapse
    levels (and against perf baselines) well-founded: the fuller level
    can only remove work, never swap in a different-sized sample of
    different faults.
    """
    candidates = [
        rep
        for rep in analysis.equiv_representatives
        if rep not in analysis.untestable
    ]
    sampled = sample_faults(candidates, config)
    if not analysis.dominated:
        return sampled
    return [fault for fault in sampled if fault not in analysis.dominated]
