"""Table 8: how many states must be traversed for high coverage.

For retimed circuits where HITEC collapses, fault-simulating the test
set generated for the *original* circuit on the retimed circuit shows
high coverage is attainable — by traversing several times more states
than HITEC managed.  Retiming preserves testability (Theorem 1); the
original test set (with the P ∪ T padding of §4.1) carries over.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis.density import ReachableStates
from ..analysis.traversal import simulate_test_set_on, traversal_report
from .atpg_tables import PairRun, run_pair
from .config import HarnessConfig
from .tables import Column, Table, pct

# The paper applies this analysis to the four lowest-coverage retimed
# circuits; the harness applies it to whichever runs are passed in (or
# builds runs for these defaults).
DEFAULT_CIRCUITS: Tuple[str, ...] = (
    "s510.jc.sr",
    "s510.jo.sr",
    "s832.jc.sr",
    "scf.ji.sd",
)


def generate(
    config: Optional[HarnessConfig] = None,
    runs: Optional[List[PairRun]] = None,
) -> Table:
    config = config or HarnessConfig.default()
    if runs is None:
        circuits = config.circuits or DEFAULT_CIRCUITS
        runs = [run_pair(name, "hitec", config) for name in circuits]
    rows = [row_for_run(run) for run in runs]
    return build_table(rows)


def row_for_run(run: PairRun) -> dict:
    """One Table 8 row: the retimed circuit's traversal versus the
    original circuit's carried-over test set."""
    retimed = run.pair.retimed_circuit
    reachable = ReachableStates(retimed)
    traversal = traversal_report(retimed, run.retimed, reachable)
    cross = simulate_test_set_on(
        retimed,
        run.original.test_set,
        pad_prefix=run.pair.retimed.exact_prefix,
    )
    return {
        "circuit": f"{run.pair.name}.re",
        "fc": run.retimed.fault_coverage,
        "fe": run.retimed.fault_efficiency,
        "traversed": traversal.states_traversed,
        "valid": traversal.num_valid_states,
        "orig_trav": cross.states_traversed,
        "orig_fc": cross.fault_coverage,
    }


def build_table(rows: List[dict]) -> Table:
    return Table(
        title=(
            "Table 8: Number of states which would have to be traversed "
            "to attain higher fault coverage"
        ),
        columns=[
            Column("circuit", "circuit"),
            Column("fc", "%FC", pct),
            Column("fe", "%FE", pct),
            Column("traversed", "#states HITEC trav"),
            Column("valid", "#valid states"),
            Column("orig_trav", "#states trav by orig test set"),
            Column("orig_fc", "%FC orig test set", pct),
        ],
        rows=rows,
    )
