"""Table 3: Attest (simulation-based engine) results."""

from __future__ import annotations

from typing import List, Optional, Tuple

from .atpg_tables import (
    PairRun,
    coverage_ratio_table,
    coverage_table_from_rows,
)
from .config import HarnessConfig
from .suite import TABLE3_CIRCUITS
from .tables import Table

TITLE = "Table 3: Attest ATPG results (simulation-based engine)"


def build_table(rows: List[dict]) -> Table:
    return coverage_table_from_rows(TITLE, rows)


def generate(
    config: Optional[HarnessConfig] = None,
) -> Tuple[Table, List[PairRun]]:
    """Regenerate Table 3 (the simulation-based engine on the paper's
    five Attest circuits).

    Expected shape: lower coverage on every retimed circuit, CPU ratio
    above 1, and %FE ≈ %FC everywhere (the engine proves no redundancy),
    matching the paper's Attest rows.
    """
    config = config or HarnessConfig.default()
    circuits = config.circuits or TABLE3_CIRCUITS
    return coverage_ratio_table(TITLE, circuits, "simbased", config)
