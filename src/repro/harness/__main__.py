"""CLI entry: ``python -m repro.harness [preset] [--jobs N] [--resume ID]``.

Examples::

    python -m repro.harness smoke                 # serial smoke run
    python -m repro.harness --jobs 4              # default preset, 4 workers
    python -m repro.harness smoke --jobs 2 --task-timeout 120
    python -m repro.harness smoke --resume 20260806-101500-ab12cd
    python -m repro.harness --quick --profile     # deterministic profile

Every run writes ``<runs-dir>/<run-id>/`` containing ``ledger.jsonl``
(one JSON row per task attempt), ``config.json`` and ``report.txt``;
``--resume`` skips cells the ledger already records as complete.
``--profile`` additionally records trace spans per task, assembles
``trace.jsonl`` and prints a per-phase rollup; combined with
``--quick`` (the smoke preset on the deterministic virtual clock) the
span tree is byte-identical at any ``--jobs`` level.
"""

import argparse
import dataclasses
import sys

from .config import HarnessConfig
from .experiment import run_all

PRESETS = {
    "smoke": HarnessConfig.smoke,
    "quick": HarnessConfig.quick,
    "default": HarnessConfig.default,
    "heavy": HarnessConfig.heavy,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "preset",
        nargs="?",
        default="default",
        choices=sorted(PRESETS),
        help="effort preset (default: default)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (1 = in-process serial)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="resume an interrupted run, skipping completed cells",
    )
    parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="where run ledgers live (default: runs/)",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock limit (jobs > 1 only)",
    )
    parser.add_argument(
        "--task-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries (with shrinking budget) before quarantining a cell",
    )
    parser.add_argument(
        "--tables",
        default=None,
        metavar="LIST",
        help="comma-separated subset of table1..table8,figure3",
    )
    parser.add_argument(
        "--collapse",
        default=None,
        choices=("equiv", "equiv+dom+checkpoint"),
        metavar="LEVEL",
        help="static fault-analysis level fed to the engines: 'equiv' "
        "or 'equiv+dom+checkpoint' (default; reports expand over the "
        "full fault universe at either level)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for the 'quick' preset (smoke effort on the "
        "deterministic virtual clock)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record metrics + trace spans, write <run>/trace.jsonl "
        "and print a per-phase rollup",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress lines (report and profile summaries "
        "still print)",
    )
    parser.add_argument(
        "--perf-snapshot",
        default=None,
        metavar="FILE",
        help="write the run's PerfSnapshot (one perf record per cell) "
        "to FILE; diff with python -m repro.obs.perf",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="content-addressed result store: serve already-computed "
        "cells from cache and store fresh ones (repro.service)",
    )
    parser.add_argument(
        "--service-socket",
        default=None,
        metavar="PATH",
        help="send cache misses to the service daemon at this unix "
        "socket instead of a local worker pool",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    preset = "quick" if args.quick else args.preset
    config = PRESETS[preset]()
    overrides = {}
    if args.task_timeout is not None:
        overrides["task_timeout_seconds"] = args.task_timeout
    if args.task_retries is not None:
        overrides["max_task_retries"] = args.task_retries
    if args.tables is not None:
        overrides["tables"] = tuple(
            name.strip() for name in args.tables.split(",") if name.strip()
        )
    if args.collapse is not None:
        overrides["collapse_level"] = args.collapse
    if overrides:
        config = dataclasses.replace(config, **overrides)
    run_all(
        config,
        stream=sys.stdout,
        jobs=args.jobs,
        resume=args.resume,
        runs_dir=args.runs_dir,
        profile=args.profile or None,
        quiet=args.quiet,
        perf_snapshot=args.perf_snapshot,
        store_dir=args.store,
        service_socket=args.service_socket,
    )
    return 0


if __name__ == "__main__":
    from .._util import note_legacy_entry

    note_legacy_entry("python -m repro.harness", "python -m repro run")
    sys.exit(main())
