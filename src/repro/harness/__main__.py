"""CLI entry: ``python -m repro.harness [smoke|default|heavy]``."""

import sys

from .config import HarnessConfig
from .experiment import run_all

PRESETS = {
    "smoke": HarnessConfig.smoke,
    "default": HarnessConfig.default,
    "heavy": HarnessConfig.heavy,
}


def main() -> int:
    preset = sys.argv[1] if len(sys.argv) > 1 else "default"
    if preset not in PRESETS:
        print(f"unknown preset {preset!r}; choose from {sorted(PRESETS)}")
        return 2
    run_all(PRESETS[preset](), stream=sys.stdout)
    return 0


if __name__ == "__main__":
    sys.exit(main())
