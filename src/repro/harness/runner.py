"""Parallel, fault-tolerant execution engine for the experiment harness.

``run_all`` used to walk all eight tables serially in one process; one
pathological retimed circuit could stall or crash the entire
reproduction.  This module decomposes the experiment into a task graph
of independent cells — one per (circuit pair × engine) plus the global
table cells — and executes them on a pool of **spawned worker
processes** with:

* crash isolation — a worker that dies (exception, segfault, OOM kill)
  costs one cell, not the run;
* a per-task wall-clock timeout — the parent terminates overrunning
  workers;
* bounded retry-with-smaller-budget — a timed-out/crashed cell is
  re-attempted with ``budget.scaled(retry_budget_scale)``, so heavy
  circuits converge to an abortable effort level;
* poison-task quarantine — a cell that fails every attempt is recorded
  as ``quarantined`` and the report marks it aborted instead of raising;
* a durable JSONL ledger (:mod:`repro.harness.ledger`) — every attempt
  is appended with its config fingerprint, wall time, peak RSS and ATPG
  counters, and ``--resume <run-id>`` skips ledger-completed cells.

Workers receive only ``(task, config)`` — both picklable — and rebuild
circuits by name through :func:`repro.harness.suite.synthesize_named`
(the synthesis cache stays per-worker), keeping task payloads tiny.
With ``jobs=1`` the same cells run in-process, through the same JSON
round-trip and the same ledger, so serial and parallel runs are
byte-identical given deterministic budgets.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import multiprocessing
import os
import sys
import time
import traceback
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..lint import GLOBAL_LEDGER
from ..obs import Observability, write_trace_jsonl
from ..obs import coverage as coverage_mod
from ..obs import perf as perf_mod
from ..obs import search as search_mod
from . import ledger as ledger_mod
from . import figure3, table1, table5, table6, table7, table8
from .atpg_tables import (
    pair_counters,
    pair_lifecycle,
    pair_rows,
    coverage_row,
    run_pair,
)
from .config import HarnessConfig
from .ledger import TaskRecord
from .suite import (
    TABLE2_CIRCUITS,
    TABLE3_CIRCUITS,
    TABLE4_CIRCUITS,
)

#: Report sections in canonical order (task and report assembly order).
SECTIONS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "figure3",
)

Emit = Callable[[str], None]


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One crash-isolated cell of the experiment grid."""

    key: str  # unique, e.g. "hitec:dk16.ji.sd"
    kind: str  # hitec_pair | attest_pair | sest_pair | struct_pair |
    #            table1 | table7 | figure3
    pair: Optional[str] = None  # circuit pair name, None for globals
    engine: Optional[str] = None
    tables: Tuple[str, ...] = ()  # report sections this cell feeds


def wants(config: HarnessConfig, section: str) -> bool:
    return config.tables is None or section in config.tables


def build_task_graph(config: HarnessConfig) -> List[TaskSpec]:
    """The experiment grid as independent cells, in canonical order.

    HITEC runs feed three report sections (Tables 2, 6 and 8 share one
    engine run, as in the paper), so they form a single cell per pair.
    """
    tasks: List[TaskSpec] = []
    if wants(config, "table1"):
        tasks.append(TaskSpec(key="table1", kind="table1", tables=("table1",)))
    if any(wants(config, t) for t in ("table2", "table6", "table8")):
        for name in config.circuits or TABLE2_CIRCUITS:
            tasks.append(
                TaskSpec(
                    key=f"hitec:{name}",
                    kind="hitec_pair",
                    pair=name,
                    engine="hitec",
                    tables=("table2", "table6", "table8"),
                )
            )
    if wants(config, "table3"):
        for name in config.circuits or TABLE3_CIRCUITS:
            tasks.append(
                TaskSpec(
                    key=f"attest:{name}",
                    kind="attest_pair",
                    pair=name,
                    engine="simbased",
                    tables=("table3",),
                )
            )
    if wants(config, "table4"):
        for name in config.circuits or TABLE4_CIRCUITS:
            tasks.append(
                TaskSpec(
                    key=f"sest:{name}",
                    kind="sest_pair",
                    pair=name,
                    engine="sest",
                    tables=("table4",),
                )
            )
    if wants(config, "table5"):
        for name in config.circuits or TABLE2_CIRCUITS:
            tasks.append(
                TaskSpec(
                    key=f"struct:{name}",
                    kind="struct_pair",
                    pair=name,
                    tables=("table5",),
                )
            )
    if wants(config, "table7"):
        tasks.append(TaskSpec(key="table7", kind="table7", tables=("table7",)))
    if wants(config, "figure3"):
        tasks.append(
            TaskSpec(key="figure3", kind="figure3", tables=("figure3",))
        )
    return tasks


# ---------------------------------------------------------------------------
# Cell execution (runs inside the worker process — everything here must
# be a pure function of (task, config)).


def _table8_rows(
    task: TaskSpec, config: HarnessConfig, run
) -> List[Dict]:
    table8_set = config.circuits or table8.DEFAULT_CIRCUITS
    return [table8.row_for_run(run)] if task.pair in table8_set else []


#: Report-section → row builder for one engine pair run.  Keyed by
#: section name, never by engine: which engine ran is entirely the
#: registry's business (``task.engine`` resolved by ``get_engine``).
_SECTION_ROWS = {
    "table2": lambda task, config, run: pair_rows(task.pair, run),
    "table3": lambda task, config, run: [coverage_row(task.pair, run)],
    "table4": lambda task, config, run: [coverage_row(task.pair, run)],
    "table6": lambda task, config, run: table6.rows_for_run(run),
    "table8": _table8_rows,
}


def _engine_pair_cell(
    task: TaskSpec, config: HarnessConfig, obs: Observability
) -> Dict:
    """One (engine × circuit pair) run feeding the task's sections.

    The single cell body behind the hitec/attest/sest pair kinds —
    ``task.engine`` is a registry name and ``task.tables`` picks the
    row builders, so adding an engine touches the registry and the task
    graph, never this function.
    """
    run = run_pair(task.pair, task.engine, config, obs=obs)
    tables: Dict[str, List[Dict]] = {}
    for section in task.tables:
        if wants(config, section):
            tables[section] = _SECTION_ROWS[section](task, config, run)
    return {
        "tables": tables,
        "counters": pair_counters(run),
        "lifecycle": pair_lifecycle(run),
    }


def _struct_cell(
    task: TaskSpec, config: HarnessConfig, obs: Observability
) -> Dict:
    return {"tables": {"table5": [table5.row_for_pair(task.pair, config)]}}


def _table1_cell(
    task: TaskSpec, config: HarnessConfig, obs: Observability
) -> Dict:
    return {"tables": {"table1": table1.compute_rows()}}


def _table7_cell(
    task: TaskSpec, config: HarnessConfig, obs: Observability
) -> Dict:
    return {"tables": {"table7": table7.compute_rows(config)}}


def _figure3_cell(
    task: TaskSpec, config: HarnessConfig, obs: Observability
) -> Dict:
    curves = figure3.generate(config)
    return {"curves": [curve.to_dict() for curve in curves]}


_CELLS = {
    "hitec_pair": _engine_pair_cell,
    "attest_pair": _engine_pair_cell,
    "sest_pair": _engine_pair_cell,
    "struct_pair": _struct_cell,
    "table1": _table1_cell,
    "table7": _table7_cell,
    "figure3": _figure3_cell,
}


def _resolve_hook(spec: str) -> Callable:
    """Import a ``pkg.module:function`` test-only task hook."""
    module_name, _, attr = spec.partition(":")
    if not attr:
        raise ReproError(
            f"bad task_hook {spec!r}; expected 'pkg.module:function'"
        )
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def execute_task(task: TaskSpec, config: HarnessConfig) -> Dict:
    """Run one cell; returns its JSON-able payload.

    The process-local lint ledger is cleared first and serialized into
    the payload, so the parent can merge every task's DRC diagnostics
    into the report exactly as the serial harness did.

    Every task gets a fresh :class:`~repro.obs.Observability` bundle —
    its metrics dump always rides in the payload; with
    ``config.profile`` the cell also runs under a recording tracer and
    the span records ride along as ``payload["trace"]``.  Per-task
    bundles keep the trace a pure function of the cell, independent of
    scheduling order or worker placement.
    """
    if task.kind not in _CELLS:
        raise ReproError(f"unknown task kind {task.kind!r}")
    GLOBAL_LEDGER.clear()
    if config.task_hook:
        _resolve_hook(config.task_hook)(task, config)
    obs = Observability.for_profile(config.profile)
    with obs.trace.span("task", key=task.key, kind=task.kind):
        payload = _CELLS[task.kind](task, config, obs)
    payload["lint"] = ledger_mod.serialize_lint_ledger(GLOBAL_LEDGER)
    payload["metrics"] = obs.metrics.dump()
    if config.profile:
        payload["trace"] = obs.trace.export()
    return payload


def _worker_main(task: TaskSpec, config_data: Dict, result_path: str) -> None:
    """Spawned-process entry: run one cell, write one result file."""
    config = HarnessConfig.from_dict(config_data)
    result: Dict = {"ok": False}
    exit_code = 0
    try:
        result["payload"] = execute_task(task, config)
        result["ok"] = True
    except BaseException:
        result["error"] = traceback.format_exc(limit=20)
        exit_code = 1
    result["peak_rss_kb"] = ledger_mod.peak_rss_kb()
    tmp_path = result_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(result, handle)
    os.replace(tmp_path, result_path)
    sys.exit(exit_code)


# ---------------------------------------------------------------------------
# Parent-side scheduling.


@dataclasses.dataclass
class _Running:
    task: TaskSpec
    attempt: int
    process: multiprocessing.process.BaseProcess
    started: float
    result_path: str


@dataclasses.dataclass
class RunResult:
    """What one runner invocation produced."""

    run_id: str
    run_dir: str
    ledger_file: str
    records: List[TaskRecord]  # full ledger contents (incl. resumed rows)
    torn_lines: int = 0
    trace_file: Optional[str] = None  # assembled trace.jsonl (profile)
    service_file: Optional[str] = None  # service.json (cache-first runs)


def _scaled_config(config: HarnessConfig, attempt: int) -> HarnessConfig:
    if attempt == 0:
        return config
    factor = config.retry_budget_scale ** attempt
    return dataclasses.replace(config, budget=config.budget.scaled(factor))


def _result_file(run_dir: str, task: TaskSpec, attempt: int) -> str:
    safe = task.key.replace(":", "_").replace("/", "_")
    return os.path.join(run_dir, "results", f"{safe}.{attempt}.json")


def _record_for(
    task: TaskSpec,
    fingerprint: str,
    attempt: int,
    config: HarnessConfig,
    outcome: str,
    wall: float,
    payload: Optional[Dict] = None,
    rss_kb: int = 0,
    error: str = "",
) -> TaskRecord:
    payload = dict(payload or {})
    counters = payload.pop("counters", {})
    metrics = payload.pop("metrics", {})
    records = payload.pop("lifecycle", {})
    # Successful attempts carry their deterministic perf core; the
    # perf-snapshot tooling joins it with the wall-time columns below.
    perf = perf_mod.deterministic_core(counters) if outcome == "ok" else {}
    # ... and the search-observatory core (the search.* subset only;
    # empty for non-ATPG cells).
    search = search_mod.search_core(counters) if outcome == "ok" else {}
    # ... and the per-fault lifecycle core (empty for non-ATPG cells).
    lifecycle = (
        coverage_mod.lifecycle_core(records) if outcome == "ok" else {}
    )
    return TaskRecord(
        key=task.key,
        kind=task.kind,
        pair=task.pair,
        engine=task.engine,
        tables=task.tables,
        fingerprint=fingerprint,
        attempt=attempt,
        budget_scale=config.retry_budget_scale ** attempt,
        outcome=outcome,
        wall_seconds=wall,
        peak_rss_kb=rss_kb,
        counters=counters,
        metrics=metrics,
        perf=perf,
        search=search,
        lifecycle=lifecycle,
        payload=payload,
        error=error,
    )


def _run_serial(
    tasks: List[TaskSpec],
    config: HarnessConfig,
    fingerprint: str,
    ledger_file: str,
    run_dir: str,
    emit: Emit,
) -> None:
    """In-process execution (jobs=1): same cells, same JSON round-trip,
    same ledger as the parallel path.  Per-task timeouts need a killable
    process and are not enforced here."""
    for task in tasks:
        for attempt in range(config.max_task_retries + 1):
            attempt_config = _scaled_config(config, attempt)
            start = time.monotonic()
            try:
                payload = execute_task(task, attempt_config)
            except Exception:
                wall = time.monotonic() - start
                error = traceback.format_exc(limit=20)
                ledger_mod.append_record(
                    ledger_file,
                    _record_for(
                        task, fingerprint, attempt, config, "crashed",
                        wall, error=error,
                    ),
                )
                emit(f"[runner] {task.key} crashed (attempt {attempt})")
                continue
            wall = time.monotonic() - start
            # The JSON round-trip matches what a worker result file
            # goes through, keeping serial and parallel rows identical.
            payload = json.loads(json.dumps(payload))
            ledger_mod.append_record(
                ledger_file,
                _record_for(
                    task, fingerprint, attempt, config, "ok", wall,
                    payload=payload, rss_kb=ledger_mod.peak_rss_kb(),
                ),
            )
            emit(f"[runner] {task.key} ok ({wall:.1f}s)")
            break
        else:
            ledger_mod.append_record(
                ledger_file,
                _record_for(
                    task, fingerprint, config.max_task_retries, config,
                    "quarantined", 0.0,
                    error="every attempt crashed",
                ),
            )
            emit(f"[runner] {task.key} quarantined")


def _finish_attempt(
    running: _Running,
    config: HarnessConfig,
    fingerprint: str,
    ledger_file: str,
    queue: deque,
    emit: Emit,
) -> None:
    """Classify a finished/killed worker, write the ledger row, and
    requeue or quarantine failed cells."""
    task, attempt = running.task, running.attempt
    wall = time.monotonic() - running.started
    outcome = "crashed"
    payload: Optional[Dict] = None
    rss_kb = 0
    error = ""
    exitcode = running.process.exitcode
    if os.path.exists(running.result_path):
        try:
            with open(running.result_path, "r", encoding="utf-8") as handle:
                result = json.load(handle)
            rss_kb = int(result.get("peak_rss_kb", 0))
            if result.get("ok"):
                # A complete result file counts even if the worker was
                # killed between writing it and exiting.
                outcome = "ok"
                payload = result["payload"]
            else:
                error = result.get("error", f"worker exit code {exitcode}")
        except (ValueError, KeyError) as exc:
            error = f"unreadable worker result: {exc}"
    elif exitcode is None:
        outcome = "timeout"
        error = (
            f"exceeded task timeout of {config.task_timeout_seconds}s; "
            "worker killed"
        )
    else:
        error = f"worker died with exit code {exitcode} and no result"

    ledger_mod.append_record(
        ledger_file,
        _record_for(
            task, fingerprint, attempt, config, outcome, wall,
            payload=payload, rss_kb=rss_kb, error=error,
        ),
    )
    if outcome == "ok":
        emit(f"[runner] {task.key} ok ({wall:.1f}s)")
        return
    emit(f"[runner] {task.key} {outcome} (attempt {attempt})")
    if attempt < config.max_task_retries:
        queue.append((task, attempt + 1))
    else:
        ledger_mod.append_record(
            ledger_file,
            _record_for(
                task, fingerprint, attempt, config, "quarantined", 0.0,
                error=f"quarantined after {attempt + 1} attempt(s): {outcome}",
            ),
        )
        emit(f"[runner] {task.key} quarantined")


def _run_parallel(
    tasks: List[TaskSpec],
    config: HarnessConfig,
    fingerprint: str,
    ledger_file: str,
    run_dir: str,
    emit: Emit,
) -> None:
    """Spawned-worker pool with per-task timeout kill."""
    context = multiprocessing.get_context("spawn")
    os.makedirs(os.path.join(run_dir, "results"), exist_ok=True)
    queue: deque = deque((task, 0) for task in tasks)
    running: Dict[str, _Running] = {}
    try:
        while queue or running:
            while queue and len(running) < config.jobs:
                task, attempt = queue.popleft()
                attempt_config = _scaled_config(config, attempt)
                result_path = _result_file(run_dir, task, attempt)
                process = context.Process(
                    target=_worker_main,
                    args=(task, attempt_config.to_dict(), result_path),
                    daemon=True,
                )
                process.start()
                running[task.key] = _Running(
                    task=task,
                    attempt=attempt,
                    process=process,
                    started=time.monotonic(),
                    result_path=result_path,
                )
            time.sleep(0.02)
            for key in list(running):
                state = running[key]
                process = state.process
                if process.is_alive():
                    timeout = config.task_timeout_seconds
                    if (
                        timeout is not None
                        and time.monotonic() - state.started > timeout
                    ):
                        process.terminate()
                        process.join(2.0)
                        if process.is_alive():
                            process.kill()
                            process.join()
                        # exitcode of a terminated process is negative;
                        # _finish_attempt keys timeouts off the marker
                        # below instead.
                        state.process = _KilledByTimeout(process)
                        del running[key]
                        _finish_attempt(
                            state, config, fingerprint, ledger_file,
                            queue, emit,
                        )
                    continue
                process.join()
                del running[key]
                _finish_attempt(
                    state, config, fingerprint, ledger_file, queue, emit
                )
    finally:
        for state in running.values():
            if state.process.is_alive():
                state.process.kill()
                state.process.join()


def assemble_trace(
    run_dir: str,
    tasks: List[TaskSpec],
    records: List[TaskRecord],
    fingerprint: str,
) -> Optional[str]:
    """Merge per-task span records into ``<run_dir>/trace.jsonl``.

    Tasks are written in canonical task-graph order — never scheduling
    order — with each span tagged by its task key, so serial and
    parallel runs of the same deterministic config produce identical
    span trees modulo the ``wall*`` metadata fields.  Failed attempts
    contribute zero-duration ``task.crashed``/``task.timeout`` event
    records derived from durable ledger rows rather than live parent
    state, keeping scheduling events reproducible too.
    """
    completed = ledger_mod.completed_by_key(records, fingerprint)
    failures: Dict[str, List[TaskRecord]] = {}
    for record in records:
        if record.fingerprint != fingerprint:
            continue
        if record.outcome in ("crashed", "timeout"):
            failures.setdefault(record.key, []).append(record)
    merged: List[Dict] = []
    for task in tasks:
        for failure in sorted(
            failures.get(task.key, ()), key=lambda r: r.attempt
        ):
            merged.append(
                {
                    "seq": None,
                    "parent": None,
                    "name": f"task.{failure.outcome}",
                    "path": f"task.{failure.outcome}",
                    "attrs": {"event": True, "attempt": failure.attempt},
                    "t0": None,
                    "t1": None,
                    "wall_ms": round(failure.wall_seconds * 1000.0, 3),
                    "task": task.key,
                }
            )
        record = completed.get(task.key)
        if record is None:
            continue
        for span in record.payload.get("trace", ()):
            span = dict(span)
            span["task"] = task.key
            merged.append(span)
    path = os.path.join(run_dir, "trace.jsonl")
    write_trace_jsonl(path, merged)
    return path


class _KilledByTimeout:
    """Wrapper marking a worker the parent killed for overrunning its
    deadline (distinguishes timeout from an ordinary crash)."""

    exitcode = None

    def __init__(self, process):
        self._process = process

    def is_alive(self) -> bool:
        return False


def run_experiment(
    config: HarnessConfig, emit: Optional[Emit] = None
) -> RunResult:
    """Execute the experiment task graph; returns the full run ledger.

    With ``config.resume`` set, previously completed cells (matching
    the current config fingerprint) are skipped and new attempts append
    to the existing ledger.
    """
    emit = emit or (lambda line: None)
    fingerprint = config.fingerprint()
    run_id = config.resume or ledger_mod.new_run_id()
    run_dir = ledger_mod.run_directory(config.runs_dir, run_id)
    ledger_file = ledger_mod.ledger_path(config.runs_dir, run_id)
    os.makedirs(run_dir, exist_ok=True)

    prior_records: List[TaskRecord] = []
    torn = 0
    if config.resume:
        ledger_mod.terminate_torn_tail(ledger_file)
        prior_records, torn = ledger_mod.load_records(ledger_file)
        mismatched = {
            record.fingerprint
            for record in prior_records
            if record.fingerprint != fingerprint
        }
        if mismatched:
            raise ReproError(
                f"refusing to resume run {run_id!r}: ledger rows were "
                f"produced under config fingerprint(s) "
                f"{sorted(mismatched)} but the current config is "
                f"{fingerprint!r}"
            )
        if torn:
            emit(f"[runner] resume: ignored {torn} torn ledger line(s)")

    with open(
        os.path.join(run_dir, "config.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(
            {"fingerprint": fingerprint, "config": config.to_dict()},
            handle,
            indent=2,
            sort_keys=True,
        )

    tasks = build_task_graph(config)
    completed = ledger_mod.completed_by_key(prior_records, fingerprint)
    todo = [task for task in tasks if task.key not in completed]
    if completed:
        emit(
            f"[runner] resume {run_id}: {len(completed)} cell(s) already "
            f"complete, {len(todo)} to run"
        )

    # Cache-first path (repro.harness.cache): hits land in the ledger
    # before any execution, misses run locally or on the daemon.
    session = None
    if config.store_dir or config.service_socket:
        from .cache import ServiceSession

        session = ServiceSession(config)
        todo = session.serve_cached(todo, ledger_file, emit)
        if session.hits.value:
            emit(
                f"[service] {session.hits.value} cell(s) from cache, "
                f"{len(todo)} to compute"
            )

    if todo:
        if session is not None and config.service_socket:
            session.run_via_daemon(todo, ledger_file, emit)
        elif config.jobs <= 1:
            _run_serial(
                todo, config, fingerprint, ledger_file, run_dir, emit
            )
        else:
            _run_parallel(
                todo, config, fingerprint, ledger_file, run_dir, emit
            )

    # Re-read the ledger: the file is the single source of truth the
    # report is assembled from (also exactly what resume would see).
    records, torn = ledger_mod.load_records(ledger_file)

    service_file = None
    if session is not None:
        if todo and not config.service_socket:
            stored = session.store_fresh(todo, records, fingerprint)
            if stored:
                emit(f"[service] stored {stored} fresh cell(s)")
        service_file = os.path.join(run_dir, "service.json")
        with open(service_file, "w", encoding="utf-8") as handle:
            json.dump(session.summary(), handle, indent=2, sort_keys=True)
    trace_file = None
    if config.profile:
        trace_file = assemble_trace(run_dir, tasks, records, fingerprint)
        emit(f"[runner] trace written to {trace_file}")
    return RunResult(
        run_id=run_id,
        run_dir=run_dir,
        ledger_file=ledger_file,
        records=records,
        torn_lines=torn,
        trace_file=trace_file,
        service_file=service_file,
    )
