"""Table 6: HITEC state-traversal and density-of-encoding information.

The paper's central table: retimed circuits explode the total state
space while the valid-state count grows slowly, so the density of
encoding collapses and the ATPG traverses a shrinking fraction of the
valid states.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.density import ReachableStates
from ..analysis.traversal import traversal_report
from ..atpg.result import AtpgResult
from ..circuit.netlist import Circuit
from .atpg_tables import PairRun, run_pair
from .config import HarnessConfig
from .suite import TABLE2_CIRCUITS
from .tables import Column, Table, eng


def generate(
    config: Optional[HarnessConfig] = None,
    runs: Optional[List[PairRun]] = None,
) -> Table:
    """Regenerate Table 6; pass Table 2's ``runs`` to reuse its HITEC
    results instead of re-running the engine."""
    config = config or HarnessConfig.default()
    circuits = config.circuits or TABLE2_CIRCUITS
    if runs is None:
        runs = [run_pair(name, "hitec", config) for name in circuits]
    rows = []
    for run in runs:
        rows.extend(rows_for_run(run))
    return build_table(rows)


def rows_for_run(run: PairRun) -> List[Dict]:
    """Both Table 6 rows (original then retimed) for one HITEC run."""
    return [
        _row(run.pair.name, run.pair.original_circuit, run.original),
        _row(
            f"{run.pair.name}.re",
            run.pair.retimed_circuit,
            run.retimed,
        ),
    ]


def build_table(rows: List[Dict]) -> Table:
    return Table(
        title="Table 6: HITEC ATPG state traversal information",
        columns=[
            Column("circuit", "circuit"),
            Column("traversed", "#states HITEC trav"),
            Column("valid", "#valid states"),
            Column("pct_valid", "% valid states trav", lambda v: f"{v:.0f}"),
            Column("total", "total #states", eng),
            Column("density", "density of encoding", eng),
        ],
        rows=rows,
    )


def _row(name: str, circuit: Circuit, result: AtpgResult) -> Dict:
    reachable = ReachableStates(circuit)
    report = traversal_report(circuit, result, reachable)
    return {
        "circuit": name,
        "traversed": report.states_traversed,
        "valid": report.num_valid_states,
        "pct_valid": report.percent_valid_traversed,
        "total": float(report.total_states),
        "density": report.density_of_encoding,
    }
