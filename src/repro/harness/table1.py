"""Table 1: the FSM benchmark suite (PI / PO / #states)."""

from __future__ import annotations

from ..fsm.benchmarks import table1_rows
from .tables import Column, Table

PAPER_TABLE1 = {
    "dk16": (3, 3, 27),
    "pma": (7, 8, 24),
    "s510": (20, 7, 47),
    "s820": (18, 19, 25),
    "s832": (18, 19, 25),
    "scf": (27, 54, 121),
}


def compute_rows() -> list:
    """Measure the generated machines next to the paper's values (they
    must be identical — the generator pins them)."""
    rows = []
    for name, pi, po, states in table1_rows():
        paper_pi, paper_po, paper_states = PAPER_TABLE1[name]
        rows.append(
            {
                "fsm": name,
                "pi": pi,
                "po": po,
                "states": states,
                "paper_pi": paper_pi,
                "paper_po": paper_po,
                "paper_states": paper_states,
                "match": (
                    "yes"
                    if (pi, po, states)
                    == (paper_pi, paper_po, paper_states)
                    else "NO"
                ),
            }
        )
    return rows


def generate() -> Table:
    return build_table(compute_rows())


def build_table(rows: list) -> Table:
    return Table(
        title="Table 1: Finite state machines used to synthesize circuits",
        columns=[
            Column("fsm", "FSM"),
            Column("pi", "PI"),
            Column("po", "PO"),
            Column("states", "states"),
            Column("paper_states", "paper states"),
            Column("match", "matches paper"),
        ],
        rows=rows,
    )
