"""Ordered diagnostic severities.

``Severity`` is a ``str`` mixin enum so existing call sites that compare
``issue.severity == "error"`` keep working, while the explicit rank
table gives the ordering that ``--fail-on`` thresholds need (plain str
mixins would otherwise compare alphabetically, putting ``error`` below
``warning``).
"""

from __future__ import annotations

import enum


class Severity(str, enum.Enum):
    """Diagnostic severity, ordered ``NOTE < WARNING < ERROR``."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _RANK[self]

    @classmethod
    def parse(cls, value: "str | Severity") -> "Severity":
        """Coerce a severity name (any case) or instance into a member."""
        if isinstance(value, Severity):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown severity {value!r}; expected one of: {names}"
            ) from None

    # Rank-based ordering (the str mixin would otherwise sort
    # alphabetically).  Plain strings are accepted on either side.
    def _coerce(self, other: object) -> "Severity | None":
        try:
            return Severity.parse(other)  # type: ignore[arg-type]
        except (ValueError, TypeError):
            return None

    def __lt__(self, other: object) -> bool:
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self.rank < coerced.rank

    def __le__(self, other: object) -> bool:
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self.rank <= coerced.rank

    def __gt__(self, other: object) -> bool:
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self.rank > coerced.rank

    def __ge__(self, other: object) -> bool:
        coerced = self._coerce(other)
        if coerced is None:
            return NotImplemented
        return self.rank >= coerced.rank

    # Keep rendering identical to the historical bare strings.
    def __str__(self) -> str:
        return self.value

    def __format__(self, spec: str) -> str:
        return format(self.value, spec)

    def __repr__(self) -> str:
        return f"Severity.{self.name}"

    # The str mixin provides __eq__/__hash__ (value equality with plain
    # strings), which is exactly the back-compat behavior we want.


_RANK = {Severity.NOTE: 0, Severity.WARNING: 1, Severity.ERROR: 2}
