"""The built-in DRC rules.

``DRC001``-``DRC005`` are the checks ported from the original
``repro.circuit.validate`` module (which remains as a thin shim over
this registry).  ``DRC101``-``DRC110`` are the new structural analyses;
each exploits an existing substrate (graph traversals, ternary
simulation semantics, SCOAP, levelization) to catch — *before* any ATPG
CPU is spent — the netlist pathologies the paper shows structural test
generators drown in: uninitializable or redundant state, unobservable
or uncontrollable lines, and invalid-state-dominated encodings.

Rule check functions take a :class:`repro.lint.core.LintContext` and
yield ``(subject, message)`` or ``(subject, message, fix_hint)``
tuples; the runner stamps IDs and severities.  Every rule must tolerate
structurally broken circuits (that is what ``DRC001`` reports), so the
helpers below return ``None`` instead of raising when the netlist is
not well-formed.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..circuit.gates import GateType, X, ternary_to_char
from ..circuit.graph import (
    dead_nodes,
    levelize,
    transitive_fanin,
)
from ..circuit.netlist import Circuit, NodeKind
from .core import LintContext, rule
from .severity import Severity

_CONST_GATES = (GateType.CONST0, GateType.CONST1)


# --------------------------------------------------------------------------
# Shared cached analyses.
# --------------------------------------------------------------------------


def _is_well_formed(context: LintContext) -> bool:
    """Fanin/PO references resolve and the combinational view is a DAG."""

    def compute() -> bool:
        try:
            context.circuit.check()
        except Exception:
            return False
        return True

    return bool(context.cached("well_formed", compute))


def _ternary_fixpoint(
    context: LintContext,
) -> Optional[Tuple[Dict[str, int], Dict[str, int]]]:
    """Abstract ternary reachability (see :mod:`repro.analysis.ternary`).

    The computation is shared with the static fault analyzer
    (:mod:`repro.fault.analysis`); this wrapper only adds the per-run
    cache and the well-formedness screen.
    """

    def compute() -> Optional[Tuple[Dict[str, int], Dict[str, int]]]:
        # Lazy: repro.analysis pulls in the ATPG result types, and this
        # module loads during the circuit package's own import.
        from ..analysis.ternary import ternary_fixpoint

        if not _is_well_formed(context):
            return None
        return ternary_fixpoint(context.circuit)

    return context.cached("ternary_fixpoint", compute)  # type: ignore[return-value]


def _levels(context: LintContext) -> Optional[Dict[str, int]]:
    def compute() -> Optional[Dict[str, int]]:
        if not _is_well_formed(context):
            return None
        return levelize(context.circuit)

    return context.cached("levels", compute)  # type: ignore[return-value]


# --------------------------------------------------------------------------
# DRC001-DRC005: ported from circuit.validate.
# --------------------------------------------------------------------------


@rule(
    "DRC001",
    name="structural-integrity",
    severity=Severity.ERROR,
    category="structure",
    legacy=True,
)
def check_structural_integrity(context: LintContext) -> Iterator[Tuple[str, str]]:
    """Hard invariants of :meth:`Circuit.check` (dangling references,
    bad DFF arity, duplicate inputs, combinational cycles)."""
    try:
        context.circuit.check()
    except Exception as exc:
        yield context.circuit.name, str(exc)


@rule(
    "DRC002",
    name="dead-node",
    severity=Severity.WARNING,
    category="connectivity",
    legacy=True,
)
def check_dead_nodes(context: LintContext) -> Iterator[Tuple[str, ...]]:
    """Logic and inputs that influence no primary output or register."""
    if not _is_well_formed(context):
        return
    circuit = context.circuit
    for name in sorted(dead_nodes(circuit)):
        if circuit.node(name).kind is NodeKind.INPUT:
            yield name, "primary input influences no output or register"
        else:
            yield (
                name,
                "dead logic: influences no output or register",
                "sweep with circuit.graph.sweep_dead_nodes()",
            )


@rule(
    "DRC003",
    name="unknown-power-up",
    severity=Severity.WARNING,
    category="initialization",
    legacy=True,
)
def check_initialization(context: LintContext) -> Iterator[Tuple[str, str]]:
    """DFFs powering up unknown: the machine has no defined reset state.

    Every experiment in this study assumes a known reset state (explicit
    reset line or power-up reset, paper §2.1); ATPG on an
    uninitializable machine burns its budget on synchronizing sequences.
    """
    circuit = context.circuit
    dffs = list(circuit.dffs())
    if not dffs:
        return
    unknown = [d.name for d in dffs if d.init == X]
    if unknown:
        yield (
            circuit.name,
            f"{len(unknown)} of {len(dffs)} DFFs power up unknown "
            f"(first: {unknown[0]!r}); ATPG will need a synchronizing "
            "sequence",
        )


@rule(
    "DRC004",
    name="no-primary-outputs",
    severity=Severity.ERROR,
    category="interface",
    legacy=True,
    retiming_invariant=True,
)
def check_has_outputs(context: LintContext) -> Iterator[Tuple[str, str]]:
    """A netlist with no primary outputs is untestable by definition."""
    if not context.circuit.outputs:
        yield context.circuit.name, "no primary outputs"


@rule(
    "DRC005",
    name="disconnected-input",
    severity=Severity.WARNING,
    category="interface",
    legacy=True,
    retiming_invariant=True,
)
def check_disconnected_inputs(context: LintContext) -> Iterator[Tuple[str, str]]:
    """Primary inputs with no sequential path to any primary output."""
    circuit = context.circuit
    if not _is_well_formed(context):
        return
    po_cone = transitive_fanin(circuit, circuit.outputs, through_dffs=True)
    for pi in circuit.inputs:
        if pi not in po_cone:
            yield pi, "primary input cannot influence any output"


# --------------------------------------------------------------------------
# DRC101-DRC108: the new analyses.
# --------------------------------------------------------------------------


@rule(
    "DRC101",
    name="combinational-cycle",
    severity=Severity.ERROR,
    category="structure",
    retiming_invariant=True,
)
def check_combinational_cycles(context: LintContext) -> Iterator[Tuple[str, ...]]:
    """DFF-free cycles (each reported once, as the SCC that contains it).

    Unlike :meth:`Circuit.check`, which stops at the first cycle, this
    enumerates every strongly connected component of the combinational
    view and names its members, so all loops can be fixed in one pass.
    """
    circuit = context.circuit
    for scc in _combinational_sccs(circuit):
        members = sorted(scc)
        shown = ", ".join(members[:6]) + (" ..." if len(members) > 6 else "")
        yield (
            members[0],
            f"combinational cycle through {len(members)} node(s): {shown}",
            "break the loop with a DFF or restructure the logic",
        )


def _combinational_sccs(circuit: Circuit) -> List[Set[str]]:
    """Tarjan SCCs of the combinational view (iterative); self-loops and
    multi-node components only."""
    edges: Dict[str, Tuple[str, ...]] = {}
    for node in circuit.nodes():
        if node.kind in (NodeKind.INPUT, NodeKind.DFF):
            edges[node.name] = ()
        else:
            edges[node.name] = tuple(f for f in node.fanin if f in circuit)

    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[Set[str]] = []

    for root in edges:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            name, edge_position = work[-1]
            if edge_position == 0:
                index[name] = lowlink[name] = counter[0]
                counter[0] += 1
                stack.append(name)
                on_stack.add(name)
            advanced = False
            successors = edges[name]
            for position in range(edge_position, len(successors)):
                successor = successors[position]
                if successor not in index:
                    work[-1] = (name, position + 1)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[name] = min(lowlink[name], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[name])
            if lowlink[name] == index[name]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == name:
                        break
                if len(component) > 1 or name in edges[name]:
                    sccs.append(component)
    return sccs


@rule(
    "DRC102",
    name="constant-net",
    severity=Severity.WARNING,
    category="redundancy",
)
def check_constant_nets(context: LintContext) -> Iterator[Tuple[str, ...]]:
    """Nets provably stuck at 0/1 by ternary static evaluation.

    A gate whose output holds one value in every reachable cycle is
    structurally redundant logic; every fault on it is untestable and
    the surrounding faults see a frozen side input.
    """
    fixpoint = _ternary_fixpoint(context)
    if fixpoint is None:
        return
    values, _ = fixpoint
    for node in context.circuit.gates():
        if node.gate in _CONST_GATES:
            continue  # intentional constant ties
        value = values[node.name]
        if value != X:
            yield (
                node.name,
                f"net provably stuck at {ternary_to_char(value)} in every "
                "reachable cycle: structurally redundant logic",
                "fold with circuit.transform.propagate_constants() and sweep",
            )


@rule(
    "DRC103",
    name="stuck-register",
    severity=Severity.WARNING,
    category="redundancy",
)
def check_stuck_registers(context: LintContext) -> Iterator[Tuple[str, ...]]:
    """Registers that provably never leave their init value.

    A stuck register contributes nothing to the state space but doubles
    the apparent one — the paper's density-of-encoding denominator grows
    while the valid-state count does not.
    """
    fixpoint = _ternary_fixpoint(context)
    if fixpoint is None:
        return
    _, state = fixpoint
    for dff in context.circuit.dffs():
        value = state[dff.name]
        if value != X:
            yield (
                dff.name,
                f"register provably holds {ternary_to_char(value)} in every "
                "reachable cycle",
                "replace the register with a constant and sweep",
            )


@rule(
    "DRC104",
    name="retiming-unsafe-init",
    severity=Severity.WARNING,
    category="retiming",
)
def check_retiming_init_safety(context: LintContext) -> Iterator[Tuple[str, ...]]:
    """Init-value inconsistencies that break Theorem 1 preconditions.

    Retiming preserves testability only when the retimed machine's reset
    state maps onto the original's (Theorem 1).  Three structural
    patterns make that mapping impossible to maintain exactly: parallel
    registers on one net that disagree on init (register merges/splits
    change reset behavior), a register whose init contradicts a provably
    constant D input (the reset state dies after one cycle), and mixed
    known/unknown power-up (backward moves cannot justify X inits
    through gates).
    """
    circuit = context.circuit
    if not _is_well_formed(context):
        return

    by_driver: Dict[str, List] = {}
    for dff in circuit.dffs():
        by_driver.setdefault(dff.fanin[0], []).append(dff)
    for driver, group in sorted(by_driver.items()):
        inits = {d.init for d in group}
        if len(group) > 1 and len(inits) > 1:
            rendered = ", ".join(
                f"{d.name}={ternary_to_char(d.init)}" for d in group
            )
            yield (
                driver,
                f"parallel registers on this net disagree on init "
                f"({rendered}); retiming cannot merge or split them "
                "without changing the reset state",
                "align the init values or separate the registers",
            )

    fixpoint = _ternary_fixpoint(context)
    if fixpoint is not None:
        values, _ = fixpoint
        for dff in circuit.dffs():
            driven = values[dff.fanin[0]]
            if driven != X and dff.init != X and dff.init != driven:
                yield (
                    dff.name,
                    f"init {ternary_to_char(dff.init)} contradicts the "
                    f"provably constant D input "
                    f"({ternary_to_char(driven)}); the reset state is "
                    "left after one cycle and backward retiming cannot "
                    "justify it",
                    "set the init value to the driven constant",
                )

    inits = [d.init for d in circuit.dffs()]
    unknown = sum(1 for v in inits if v == X)
    if 0 < unknown < len(inits):
        yield (
            circuit.name,
            f"mixed power-up: {unknown} of {len(inits)} registers start "
            "unknown; backward retiming moves cannot justify X init "
            "values through gates with defined siblings",
        )


@rule(
    "DRC105",
    name="scoap-saturated",
    severity=Severity.WARNING,
    category="testability",
)
def check_scoap_saturation(context: LintContext) -> Iterator[Tuple[str, ...]]:
    """Lines whose SCOAP controllability or observability saturates.

    A saturated controllability means no input/state sequence the
    fixpoint found can set the line; saturated observability means no
    path propagates a fault effect to an output.  ATPG will spend its
    whole per-fault budget proving these faults untestable — flagging
    them first is the cheap screen.
    """
    circuit = context.circuit
    if not _is_well_formed(context):
        return
    from ..analysis.testability import INFINITY, scoap  # lazy: heavy import

    # seed_reset: reset-state values cost nothing, so registers whose
    # only structural support is their own loop do not false-positive.
    report = scoap(
        circuit,
        max_iterations=context.config.scoap_iterations,
        seed_reset=True,
    )
    dead = dead_nodes(circuit)
    for node in circuit.nodes():
        name = node.name
        if node.kind is NodeKind.GATE and node.gate in _CONST_GATES:
            continue  # constants are uncontrollable by design
        worst = max(report.cc0[name], report.cc1[name])
        if worst >= INFINITY:
            stuck_at = "0" if report.cc0[name] >= INFINITY else "1"
            yield (
                name,
                f"SCOAP controllability saturated (cannot set the line "
                f"to {stuck_at}); stuck-at faults here will abort",
            )
    for node in circuit.nodes():
        name = node.name
        if name in dead:
            continue  # DRC002's finding; don't double-report
        if report.observability[name] >= INFINITY:
            yield (
                name,
                "SCOAP observability saturated: no structural path "
                "propagates a fault effect on this line to an output",
            )


@rule(
    "DRC106",
    name="state-encoding-density",
    severity=Severity.WARNING,
    category="encoding",
)
def check_encoding_density(context: LintContext) -> Iterator[Tuple[str, ...]]:
    """Register count far above the reachable-state bound (low density).

    The paper's key complexity indicator: when 2^#DFF dwarfs the valid
    states, ATPG drowns justifying unreachable states.  Two screens run:

    * a **structural upper bound** — stuck registers (from the ternary
      fixpoint) contribute no state bit and lockstep duplicates (same
      driver, same init) collapse to one — flagged when provably wasted
      bits reach ``min_wasted_state_bits``;
    * **exact symbolic reachability** (the Table 6/7 machinery) when
      ``#DFF <= density_dff_limit`` and the reset state is defined —
      flagged when the density of encoding is at or below
      ``min_density``.
    """
    circuit = context.circuit
    fixpoint = _ternary_fixpoint(context)
    if fixpoint is None:
        return
    _, state = fixpoint
    dffs = list(circuit.dffs())
    total = len(dffs)
    if total == 0:
        return
    classes: Set[Tuple[str, int]] = set()
    stuck = 0
    for dff in dffs:
        if state[dff.name] != X:
            stuck += 1
            continue
        classes.add((dff.fanin[0], dff.init))
    effective = len(classes)
    wasted = total - effective
    if wasted >= context.config.min_wasted_state_bits:
        yield (
            circuit.name,
            f"{total} DFFs but at most 2^{effective} reachable states "
            f"({stuck} stuck register(s), "
            f"{total - stuck - effective} lockstep duplicate(s)): "
            f"density of encoding <= 2^-{wasted} — the low-density red "
            "flag for sequential-ATPG blowup (paper §5)",
            "re-encode the state or sweep redundant registers",
        )

    if total > context.config.density_dff_limit:
        return
    if any(dff.init == X for dff in dffs):
        return  # density is defined relative to a reset state (DRC003)
    from ..analysis.density import reachability_report  # lazy: BDD engine

    report = reachability_report(circuit)
    density = report.density_of_encoding
    if density <= context.config.min_density:
        yield (
            circuit.name,
            f"density of encoding {density:.3g} "
            f"({report.num_valid_states} valid of 2^{total} total "
            f"states) is at or below {context.config.min_density:g}: "
            "ATPG will waste its budget justifying unreachable states "
            "(paper §5, Tables 6-7)",
            "re-encode with fewer state bits or retime registers back "
            "out of the combinational logic",
        )


@rule(
    "DRC107",
    name="combinational-depth",
    severity=Severity.WARNING,
    category="budget",
)
def check_combinational_depth(context: LintContext) -> Iterator[Tuple[str, ...]]:
    """Logic depth beyond the structural budget.

    Deep combinational cones blow up PODEM's backtrace and the
    time-frame expansion cost per frame; depth is capped by
    ``LintConfig.max_depth``.
    """
    levels = _levels(context)
    if levels is None:
        return
    budget = context.config.max_depth
    deepest = None
    for name, level in levels.items():
        if level > budget and (deepest is None or level > levels[deepest]):
            deepest = name
    if deepest is not None:
        yield (
            deepest,
            f"combinational depth {levels[deepest]} exceeds the "
            f"structural budget ({budget})",
            "restructure with a depth-oriented script or pipeline the cone",
        )


@rule(
    "DRC108",
    name="fanout-budget",
    severity=Severity.WARNING,
    category="budget",
)
def check_fanout_budget(context: LintContext) -> Iterator[Tuple[str, ...]]:
    """Nets whose fanout exceeds the structural budget.

    Very high fanout stems multiply the reconvergence the D-algorithm
    family must track and make single lines dominate the fault list.
    The budget scales with circuit size (``LintConfig.max_fanout`` is
    the absolute floor, ``max_fanout_fraction`` the relative cap), so
    two-level-style netlists with legitimately wide literal drivers are
    not drowned in findings — only disproportionate stems are flagged.
    """
    circuit = context.circuit
    if not _is_well_formed(context):
        return
    budget = max(
        context.config.max_fanout,
        int(context.config.max_fanout_fraction * len(circuit)),
    )
    for name, readers in sorted(circuit.fanouts().items()):
        extra = int(circuit.is_output(name))
        if len(readers) + extra > budget:
            yield (
                name,
                f"fanout {len(readers) + extra} exceeds the structural "
                f"budget ({budget})",
                "buffer the net into a fanout tree",
            )


@rule(
    "DRC109",
    name="untestable-fault-site",
    severity=Severity.WARNING,
    category="testability",
)
def check_untestable_fault_sites(
    context: LintContext,
) -> Iterator[Tuple[str, ...]]:
    """Fault sites with statically provable untestable stuck-at faults.

    The static fault analyzer (:mod:`repro.fault.analysis`) proves
    faults undetectable without search: unexcitable (the line is
    provably constant, sharing DRC102's ternary fixpoint) or
    unobservable (no structural path to any primary output).  Every
    such fault is dead weight in the fault list and usually marks
    removable logic.
    """
    if not _is_well_formed(context):
        return

    def compute() -> Dict[str, List[str]]:
        # Lazy: repro.fault imports the circuit package this module
        # loads under.
        from ..fault.analysis import untestable_faults

        by_node: Dict[str, List[str]] = {}
        for fault, reason in untestable_faults(context.circuit).items():
            by_node.setdefault(fault.node, []).append(
                f"{fault}: {reason}"
            )
        return by_node

    by_node = context.cached("untestable_faults", compute)
    for name in sorted(by_node):  # type: ignore[union-attr]
        proofs = by_node[name]  # type: ignore[index]
        yield (
            name,
            "; ".join(sorted(proofs)),
            "remove the dead logic or tie the line off explicitly",
        )


@rule(
    "DRC110",
    name="checkpoint-ratio",
    severity=Severity.NOTE,
    category="testability",
)
def check_checkpoint_ratio(
    context: LintContext,
) -> Iterator[Tuple[str, ...]]:
    """Checkpoint-to-site ratio outside the suite's normal band.

    Checkpoints (primary inputs, fanout stems, DFF outputs) bound the
    fault-collapsing yield: a near-zero ratio means the netlist is one
    long fanout-free chain (degenerate structure, suspiciously
    serial), a high ratio means nearly every line branches and
    dominance/checkpoint collapsing buys almost nothing.  The band is
    ``LintConfig.min_checkpoint_ratio``/``max_checkpoint_ratio``.
    """
    if not _is_well_formed(context):
        return
    from ..fault.analysis import checkpoint_nodes  # lazy, see DRC109

    circuit = context.circuit
    sites = len(circuit)
    if sites == 0:
        return
    ratio = len(checkpoint_nodes(circuit)) / sites
    low = context.config.min_checkpoint_ratio
    high = context.config.max_checkpoint_ratio
    if ratio < low:
        yield (
            circuit.name,
            f"checkpoint ratio {ratio:.4f} below {low} — the netlist "
            "is nearly one fanout-free chain; expect anomalously deep "
            "backtrace cones",
        )
    elif ratio > high:
        yield (
            circuit.name,
            f"checkpoint ratio {ratio:.4f} above {high} — almost every "
            "line is a stem; dominance/checkpoint collapsing will buy "
            "little",
        )
