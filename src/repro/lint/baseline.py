"""Baseline suppression files.

A baseline records the *accepted* findings of a codebase so CI can fail
only on regressions.  The format is line-oriented and diff-friendly::

    # repro.lint baseline (one fingerprint per line)
    <scope> <rule-id> <subject>

``scope`` is usually the circuit name (``-`` when none).  Anything after
a ``#`` is a comment; the writer appends the finding's message as a
comment so reviews of the baseline stay meaningful.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import Diagnostic, LintReport

HEADER = "# repro.lint baseline (one '<scope> <rule-id> <subject>' per line)"


class Baseline:
    """A set of accepted finding fingerprints."""

    def __init__(self, fingerprints: Optional[Iterable[str]] = None):
        self._fingerprints: Set[str] = set(fingerprints or ())

    def __len__(self) -> int:
        return len(self._fingerprints)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._fingerprints

    @property
    def fingerprints(self) -> Set[str]:
        return set(self._fingerprints)

    def is_suppressed(self, diag: Diagnostic, scope: str) -> bool:
        return diag.fingerprint(scope) in self._fingerprints

    def apply(self, report: LintReport, scope: str = "") -> LintReport:
        """Report minus suppressed findings (``suppressed`` counts them)."""
        return report.without(self._fingerprints, scope=scope)

    def new_findings(
        self, report: LintReport, scope: str = ""
    ) -> List[Diagnostic]:
        scope = scope or report.circuit_name
        return [
            d for d in report.diagnostics if not self.is_suppressed(d, scope)
        ]

    def record(self, report: LintReport, scope: str = "") -> None:
        scope = scope or report.circuit_name
        for diag in report.diagnostics:
            self._fingerprints.add(diag.fingerprint(scope))

    # -- persistence -------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        baseline = cls()
        if not os.path.exists(path):
            return baseline
        with open(path) as handle:
            for line in handle:
                entry = line.split("#", 1)[0].strip()
                if not entry:
                    continue
                parts = entry.split()
                if len(parts) != 3:
                    raise ValueError(
                        f"{path}: malformed baseline line {line.rstrip()!r}"
                    )
                baseline._fingerprints.add(" ".join(parts))
        return baseline

    def save(
        self,
        path: str,
        annotations: Optional[Dict[str, str]] = None,
    ) -> None:
        """Write fingerprints sorted, optionally with message comments."""
        annotations = annotations or {}
        with open(path, "w") as handle:
            handle.write(HEADER + "\n")
            for fingerprint in sorted(self._fingerprints):
                note = annotations.get(fingerprint)
                if note:
                    handle.write(f"{fingerprint}  # {note}\n")
                else:
                    handle.write(f"{fingerprint}\n")


def baseline_from_reports(
    reports: Iterable[Tuple[str, LintReport]],
) -> Tuple[Baseline, Dict[str, str]]:
    """Build a baseline (plus message annotations) from (scope, report)
    pairs — what ``--update-baseline`` writes."""
    baseline = Baseline()
    annotations: Dict[str, str] = {}
    for scope, report in reports:
        scope = scope or report.circuit_name
        for diag in report.diagnostics:
            fingerprint = diag.fingerprint(scope)
            baseline._fingerprints.add(fingerprint)
            annotations.setdefault(
                fingerprint, f"[{diag.severity}] {diag.message}"
            )
    return baseline, annotations
