"""Pipeline gating: run the analyzer at flow boundaries.

Two call sites use this module:

* the **post-synthesis gate** — :func:`repro.synth.synthesize.synthesize`
  lints every mapped netlist before returning it (warn-only by default),
  so defective synthesis products are surfaced instead of silently fed
  to ATPG;
* the **pre-ATPG gate** — the experiment harness lints every circuit an
  engine is about to chew on.  In ``strict`` mode an error-severity
  diagnostic aborts the run (:class:`repro.errors.LintError`); in
  ``warn`` mode diagnostics are logged and recorded in the run ledger so
  every Table-1..8 report states the diagnostics it ran under.

Gate findings go through the ``repro.lint`` logger (WARNING for the
one-line summary, DEBUG for individual diagnostics), so library users
control verbosity with standard logging configuration.
"""

from __future__ import annotations

import dataclasses
import enum
import logging
from typing import Dict, List, Optional, Tuple

from ..circuit.netlist import Circuit
from ..errors import LintError
from .core import LintConfig, LintReport, run_lint
from .severity import Severity

logger = logging.getLogger("repro.lint")


class GateMode(enum.Enum):
    """How a pipeline gate reacts to diagnostics."""

    OFF = "off"  # skip the analyzer entirely
    WARN = "warn"  # log + record, never raise
    STRICT = "strict"  # raise LintError at error severity

    @classmethod
    def parse(cls, value: "str | GateMode") -> "GateMode":
        if isinstance(value, GateMode):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown lint gate mode {value!r}; expected one of: {names}"
            ) from None


@dataclasses.dataclass
class LedgerEntry:
    stage: str
    report: LintReport


class LintLedger:
    """Per-run accumulator of gate reports, rendered into harness output."""

    def __init__(self) -> None:
        self._entries: List[LedgerEntry] = []

    def clear(self) -> None:
        self._entries.clear()

    def record(self, stage: str, report: LintReport) -> None:
        """Record a gate run; a repeated stage replaces its entry (tables
        sharing circuits re-gate them — the summary wants one row each)."""
        for position, entry in enumerate(self._entries):
            if entry.stage == stage:
                self._entries[position] = LedgerEntry(stage=stage, report=report)
                return
        self._entries.append(LedgerEntry(stage=stage, report=report))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> List[LedgerEntry]:
        return list(self._entries)

    def totals(self) -> Dict[str, int]:
        totals = {str(s): 0 for s in Severity}
        for entry in self._entries:
            for severity, count in entry.report.counts().items():
                totals[severity] += count
        return totals

    def render_summary(self, title: str = "Static analysis (DRC) gate") -> str:
        """The diagnostics section appended to harness reports."""
        if not self._entries:
            return f"{title}: no circuits gated"
        totals = self.totals()
        lines = [
            f"{title}: {len(self._entries)} circuit(s) analyzed — "
            + ", ".join(
                f"{totals[str(s)]} {s}(s)" for s in reversed(list(Severity))
            )
        ]
        for entry in self._entries:
            report = entry.report
            worst = report.worst()
            lines.append(
                f"  {entry.stage}: {len(report)} finding(s)"
                + (f", worst={worst}" if worst else "")
            )
            flagged = report.at_or_above(Severity.WARNING)
            for diag in flagged[:_SUMMARY_DETAIL_LIMIT]:
                lines.append(f"    {diag}")
            if len(flagged) > _SUMMARY_DETAIL_LIMIT:
                lines.append(
                    f"    ... {len(flagged) - _SUMMARY_DETAIL_LIMIT} more"
                )
        return "\n".join(lines)


#: Findings shown per ledger entry in the harness report summary.
_SUMMARY_DETAIL_LIMIT = 4

#: The process-wide ledger the harness drains into its report.
GLOBAL_LEDGER = LintLedger()


def gate_circuit(
    circuit: Circuit,
    mode: "str | GateMode" = GateMode.WARN,
    stage: str = "",
    config: Optional[LintConfig] = None,
    ledger: Optional[LintLedger] = GLOBAL_LEDGER,
    obs=None,
) -> Optional[LintReport]:
    """Run the analyzer as a flow gate; returns the report (None if OFF).

    ``strict`` raises :class:`LintError` when any diagnostic reaches the
    config's ``fail_on`` threshold (error severity by default); ``warn``
    logs a one-line summary at WARNING and the individual findings at
    DEBUG.  Every non-OFF invocation is recorded in ``ledger``.
    ``obs`` is forwarded to :func:`run_lint` for per-rule spans/metrics.
    """
    mode = GateMode.parse(mode)
    if mode is GateMode.OFF:
        return None
    config = config or LintConfig()
    stage = stage or f"lint:{circuit.name}"
    if obs is not None:
        with obs.trace.span("lint.gate", stage=stage):
            report = run_lint(circuit, config, obs=obs)
    else:
        report = run_lint(circuit, config)
    if ledger is not None:
        ledger.record(stage, report)

    flagged = report.at_or_above(Severity.WARNING)
    if flagged:
        counts = report.counts()
        summary = (
            f"{stage}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s) from {len(report.rules_run)} rules"
        )
        for diag in flagged:
            logger.debug("%s: %s", stage, diag)
        if mode is GateMode.STRICT and report.at_or_above(config.fail_on):
            rendered = "\n".join(
                str(d) for d in report.at_or_above(config.fail_on)
            )
            raise LintError(
                f"circuit {circuit.name!r} failed the {stage} lint gate "
                f"(fail-on={config.fail_on}):\n{rendered}"
            )
        # Errors surface on stderr by default (logging's last-resort
        # handler); mere warnings stay at INFO so test runs aren't noisy.
        logger.log(
            logging.WARNING if report.errors else logging.INFO, "%s", summary
        )
    return report
