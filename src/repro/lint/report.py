"""Diagnostic reporters: human-readable text and machine-readable JSON.

The JSON schema is stable (``schema_version`` guards consumers):

.. code-block:: json

    {
      "schema_version": 1,
      "tool": "repro.lint",
      "reports": [
        {
          "circuit": "s510.jo.sr",
          "rules_run": ["DRC001", "..."],
          "counts": {"note": 0, "warning": 2, "error": 0},
          "suppressed": 0,
          "elapsed_seconds": 0.01,
          "diagnostics": [
            {"rule": "DRC106", "severity": "warning", "category": "encoding",
             "subject": "s510.jo.sr", "message": "...", "fix_hint": "..."}
          ]
        }
      ]
    }
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from .core import LintReport, RuleRegistry
from .severity import Severity

SCHEMA_VERSION = 1


def render_text(reports: "LintReport | Sequence[LintReport]") -> str:
    """Compiler-style text rendering of one or several reports."""
    lines: List[str] = []
    for report in _as_sequence(reports):
        counts = report.counts()
        summary = ", ".join(
            f"{counts[str(s)]} {s}(s)" for s in reversed(list(Severity))
        )
        lines.append(f"== {report.circuit_name}: {summary}")
        if report.suppressed:
            lines.append(f"   ({report.suppressed} baseline-suppressed)")
        for diag in sorted(
            report.diagnostics,
            key=lambda d: (-d.severity.rank, d.rule_id, d.subject),
        ):
            lines.append(f"  {diag}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(reports: "LintReport | Sequence[LintReport]") -> str:
    payload: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "tool": "repro.lint",
        "reports": [r.to_dict() for r in _as_sequence(reports)],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def render_rule_listing(registry: RuleRegistry) -> str:
    """The ``--list-rules`` table."""
    lines = [f"{len(registry)} registered rules:"]
    for entry in registry.rules():
        flags = []
        if entry.legacy:
            flags.append("ported")
        if entry.retiming_invariant:
            flags.append("retiming-invariant")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        lines.append(
            f"  {entry.rule_id}  {entry.severity:<7}  {entry.category:<12} "
            f"{entry.name}: {entry.description}{suffix}"
        )
    return "\n".join(lines) + "\n"


def _as_sequence(
    reports: "LintReport | Sequence[LintReport]",
) -> Sequence[LintReport]:
    if isinstance(reports, LintReport):
        return [reports]
    return list(reports)
