"""DRC engine core: diagnostics, the rule registry, config and runner.

The analyzer is a registry of small pure functions over
:class:`repro.circuit.netlist.Circuit`.  Each rule owns a stable ID
(``DRC0xx`` for the checks ported from ``circuit.validate``, ``DRC1xx``
for the new structural analyses), a default severity, and a category;
a :class:`LintConfig` can disable rules or override their severity
without touching the rule code.  Running the registry yields a
:class:`LintReport` of :class:`Diagnostic` objects which the reporters
in :mod:`repro.lint.report` render as text or JSON.

Rules receive a :class:`LintContext` so expensive intermediate results
(the ternary fixpoint, SCOAP measures, levels) are computed at most once
per run even when several rules consume them.
"""

from __future__ import annotations

import dataclasses
import time
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..circuit.netlist import Circuit
from ..obs import Observability
from .severity import Severity


@dataclasses.dataclass
class Diagnostic:
    """One finding: rule ID, severity, the subject node/feature, message
    and an optional machine-actionable fix hint."""

    rule_id: str
    severity: Severity
    subject: str
    message: str
    category: str = ""
    fix_hint: Optional[str] = None

    def __str__(self) -> str:
        rendered = f"{self.rule_id} [{self.severity}] {self.subject}: {self.message}"
        if self.fix_hint:
            rendered += f" (hint: {self.fix_hint})"
        return rendered

    def fingerprint(self, scope: str = "") -> str:
        """Stable identity for baseline suppression.

        Messages carry counts and values that drift across synthesis
        tweaks, so the fingerprint is (scope, rule, subject) only.
        """
        return f"{scope or '-'} {self.rule_id} {self.subject}"

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "category": self.category,
            "subject": self.subject,
            "message": self.message,
        }
        if self.fix_hint:
            data["fix_hint"] = self.fix_hint
        return data


# A rule check yields (subject, message) or (subject, message, fix_hint);
# the runner stamps rule ID, category and (possibly overridden) severity.
Finding = Tuple[str, ...]
CheckFunction = Callable[["LintContext"], Iterable[Finding]]


@dataclasses.dataclass(frozen=True)
class Rule:
    """One registered analysis."""

    rule_id: str
    name: str  # kebab-case slug, e.g. "combinational-cycle"
    severity: Severity  # default; LintConfig may override
    category: str
    description: str
    check: CheckFunction
    legacy: bool = False  # ported from circuit.validate
    retiming_invariant: bool = False  # diagnostics stable under retiming


class RuleRegistry:
    """Ordered collection of rules, keyed by stable ID."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.rule_id in self._rules:
            raise ValueError(f"duplicate rule ID {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"no rule with ID {rule_id!r}") from None

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def rules(self) -> List[Rule]:
        """All rules, sorted by ID (stable run order)."""
        return [self._rules[k] for k in sorted(self._rules)]

    def legacy_rules(self) -> List[Rule]:
        return [r for r in self.rules() if r.legacy]


#: The process-wide registry that :mod:`repro.lint.rules` populates.
REGISTRY = RuleRegistry()


def rule(
    rule_id: str,
    *,
    name: str,
    severity: Severity,
    category: str,
    legacy: bool = False,
    retiming_invariant: bool = False,
    registry: Optional[RuleRegistry] = None,
) -> Callable[[CheckFunction], CheckFunction]:
    """Decorator registering a check function as a rule.

    The function's docstring (first line) becomes the rule description.
    """

    def decorate(check: CheckFunction) -> CheckFunction:
        description = (check.__doc__ or "").strip().splitlines()
        # `registry or REGISTRY` would be wrong: an empty RuleRegistry
        # is falsy (len 0) and would silently leak into the global one.
        target = REGISTRY if registry is None else registry
        target.register(
            Rule(
                rule_id=rule_id,
                name=name,
                severity=severity,
                category=category,
                description=description[0] if description else "",
                check=check,
                legacy=legacy,
                retiming_invariant=retiming_invariant,
            )
        )
        return check

    return decorate


@dataclasses.dataclass
class LintConfig:
    """Which rules run, at what severity, with what structural budgets."""

    disabled: FrozenSet[str] = frozenset()
    only: Optional[FrozenSet[str]] = None  # restrict to these IDs if set
    severity_overrides: Mapping[str, Severity] = dataclasses.field(
        default_factory=dict
    )
    fail_on: Severity = Severity.ERROR
    max_findings_per_rule: int = 25
    # Structural budgets (DRC107/DRC108).  The fanout budget scales with
    # circuit size — two-level-style netlists legitimately fan literal
    # drivers out to hundreds of cubes — with ``max_fanout`` as the
    # absolute floor: budget = max(max_fanout, fraction * #nodes).
    max_depth: int = 64
    max_fanout: int = 64
    max_fanout_fraction: float = 0.25
    # Density red flag (DRC106): minimum provably-wasted state bits for
    # the structural bound, plus the exact-reachability screen — BDD
    # traversal runs when #DFF <= density_dff_limit and flags densities
    # at or below min_density (the paper's low-density pathology).
    min_wasted_state_bits: int = 2
    density_dff_limit: int = 28
    min_density: float = 0.05
    # SCOAP fixpoint iteration cap (DRC105).
    scoap_iterations: int = 60
    # Checkpoint-ratio advisory band (DRC110): checkpoints (PIs +
    # fanout stems + DFF outputs) over fault sites.  The Table 2 suite
    # spans [0.013, 0.221]; ratios outside the band mean the checkpoint
    # reduction behaves anomalously — near-zero suggests a degenerate
    # fanout-free chain, high ratios mean collapsing buys almost
    # nothing.
    min_checkpoint_ratio: float = 0.005
    max_checkpoint_ratio: float = 0.5

    def is_enabled(self, rule: Rule) -> bool:
        if rule.rule_id in self.disabled:
            return False
        if self.only is not None and rule.rule_id not in self.only:
            return False
        return True

    def effective_severity(self, rule: Rule) -> Severity:
        override = self.severity_overrides.get(rule.rule_id)
        return Severity.parse(override) if override is not None else rule.severity

    def with_overrides(self, **changes: object) -> "LintConfig":
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LintConfig":
        """Build a config from a plain dict (the CLI's --config file)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown lint config keys: {sorted(unknown)}")
        kwargs: Dict[str, object] = dict(data)
        if "disabled" in kwargs:
            kwargs["disabled"] = frozenset(kwargs["disabled"])  # type: ignore[arg-type]
        if "only" in kwargs and kwargs["only"] is not None:
            kwargs["only"] = frozenset(kwargs["only"])  # type: ignore[arg-type]
        if "severity_overrides" in kwargs:
            kwargs["severity_overrides"] = {
                rule_id: Severity.parse(sev)  # type: ignore[arg-type]
                for rule_id, sev in dict(kwargs["severity_overrides"]).items()  # type: ignore[call-overload]
            }
        if "fail_on" in kwargs:
            kwargs["fail_on"] = Severity.parse(kwargs["fail_on"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]


class LintContext:
    """Per-run scratch space shared by the rules.

    Caches analyses that several rules consume (ternary fixpoint, SCOAP,
    levelization) so each is computed at most once per :func:`run_lint`.
    """

    def __init__(self, circuit: Circuit, config: LintConfig):
        self.circuit = circuit
        self.config = config
        self._cache: Dict[str, object] = {}

    def cached(self, key: str, compute: Callable[[], object]) -> object:
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]


@dataclasses.dataclass
class LintReport:
    """Outcome of one analyzer run over one circuit."""

    circuit_name: str
    diagnostics: List[Diagnostic]
    rules_run: Tuple[str, ...]
    suppressed: int = 0
    elapsed_seconds: float = 0.0
    # Wall seconds per rule ID.  Diagnostic only — deliberately kept out
    # of to_dict() so ledger rows stay machine-independent; the obs
    # trace carries the same timings as span wall_ms metadata.
    rule_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    def counts(self) -> Dict[str, int]:
        totals = {str(s): 0 for s in Severity}
        for diag in self.diagnostics:
            totals[str(diag.severity)] += 1
        return totals

    def worst(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def at_or_above(self, threshold: Severity) -> List[Diagnostic]:
        threshold = Severity.parse(threshold)
        return [d for d in self.diagnostics if d.severity >= threshold]

    def exit_code(self, fail_on: Optional[Severity] = None) -> int:
        """0 when no finding reaches the threshold, 1 otherwise."""
        threshold = Severity.parse(fail_on) if fail_on is not None else Severity.ERROR
        return 1 if self.at_or_above(threshold) else 0

    def without(self, fingerprints: Iterable[str], scope: str = "") -> "LintReport":
        """A copy with baseline-suppressed diagnostics removed."""
        suppress = set(fingerprints)
        kept = [
            d
            for d in self.diagnostics
            if d.fingerprint(scope or self.circuit_name) not in suppress
        ]
        return dataclasses.replace(
            self,
            diagnostics=kept,
            suppressed=self.suppressed + len(self.diagnostics) - len(kept),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit_name,
            "rules_run": list(self.rules_run),
            "counts": self.counts(),
            "suppressed": self.suppressed,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


def _normalize(finding: object) -> Tuple[str, str, Optional[str]]:
    if isinstance(finding, Diagnostic):
        return finding.subject, finding.message, finding.fix_hint
    if isinstance(finding, tuple) and len(finding) in (2, 3):
        subject, message = finding[0], finding[1]
        hint = finding[2] if len(finding) == 3 else None
        return str(subject), str(message), hint
    raise TypeError(
        f"rule yielded {finding!r}; expected (subject, message[, fix_hint])"
    )


def run_lint(
    circuit: Circuit,
    config: Optional[LintConfig] = None,
    registry: Optional[RuleRegistry] = None,
    rules: Optional[Sequence[Rule]] = None,
    obs: Optional[Observability] = None,
) -> LintReport:
    """Run every enabled rule over ``circuit`` and collect diagnostics.

    ``rules`` restricts the run to an explicit list (the back-compat
    shim uses this for the legacy subset); otherwise every enabled rule
    of the registry runs in ID order.  A crashing rule is reported as an
    error-severity diagnostic rather than aborting the run — broken
    circuits are exactly what the analyzer must survive.

    ``obs`` receives one ``lint.rule`` trace span per rule (wall timing
    as span metadata) and ``lint.findings{rule=...}`` counters.
    """
    from . import rules as _builtin_rules  # noqa: F401  (populate REGISTRY)

    config = config or LintConfig()
    registry = registry or REGISTRY
    obs = obs if obs is not None else Observability()
    selected = list(rules) if rules is not None else registry.rules()
    context = LintContext(circuit, config)
    diagnostics: List[Diagnostic] = []
    ran: List[str] = []
    rule_seconds: Dict[str, float] = {}
    start = time.perf_counter()

    for rule_entry in selected:
        if rules is None and not config.is_enabled(rule_entry):
            continue
        ran.append(rule_entry.rule_id)
        severity = config.effective_severity(rule_entry)
        emitted = 0
        rule_start = time.perf_counter()
        with obs.trace.span(
            "lint.rule", rule=rule_entry.rule_id, circuit=circuit.name
        ):
            try:
                for finding in rule_entry.check(context):
                    subject, message, hint = _normalize(finding)
                    emitted += 1
                    if emitted > config.max_findings_per_rule:
                        continue  # keep counting, stop storing
                    diagnostics.append(
                        Diagnostic(
                            rule_id=rule_entry.rule_id,
                            severity=severity,
                            subject=subject,
                            message=message,
                            category=rule_entry.category,
                            fix_hint=hint,
                        )
                    )
            except Exception as exc:  # pragma: no cover - defensive
                diagnostics.append(
                    Diagnostic(
                        rule_id=rule_entry.rule_id,
                        severity=Severity.ERROR,
                        subject=circuit.name,
                        message=f"rule {rule_entry.name} crashed: {exc}",
                        category="internal",
                    )
                )
                rule_seconds[rule_entry.rule_id] = (
                    time.perf_counter() - rule_start
                )
                continue
        rule_seconds[rule_entry.rule_id] = time.perf_counter() - rule_start
        if emitted:
            obs.metrics.counter(
                "lint.findings", rule=rule_entry.rule_id
            ).inc(emitted)
        overflow = emitted - config.max_findings_per_rule
        if overflow > 0:
            diagnostics.append(
                Diagnostic(
                    rule_id=rule_entry.rule_id,
                    severity=Severity.NOTE,
                    subject=circuit.name,
                    message=(
                        f"{overflow} further finding(s) truncated "
                        f"(max_findings_per_rule={config.max_findings_per_rule})"
                    ),
                    category=rule_entry.category,
                )
            )
    obs.metrics.counter("lint.rules_run").inc(len(ran))

    return LintReport(
        circuit_name=circuit.name,
        diagnostics=diagnostics,
        rules_run=tuple(ran),
        elapsed_seconds=time.perf_counter() - start,
        rule_seconds=rule_seconds,
    )
