"""CLI: ``python -m repro.lint <file.blif> ... [options]``.

Exit codes:

* ``0`` — analyzer ran; no (non-suppressed) finding reached the
  ``--fail-on`` threshold;
* ``1`` — at least one finding at or above the threshold;
* ``2`` — usage error, unreadable input, or unparseable netlist.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from ..errors import ReproError
from .baseline import Baseline, baseline_from_reports
from .core import LintConfig, LintReport, REGISTRY, run_lint
from .report import render_json, render_rule_listing, render_text
from .severity import Severity


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Rule-based netlist DRC: static analysis before ATPG.",
    )
    parser.add_argument("files", nargs="*", help="BLIF netlists to analyze")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--fail-on",
        default="error",
        metavar="SEVERITY",
        help="exit 1 when a finding reaches this severity "
        "(note|warning|error; default: error)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="disable a rule by ID (repeatable), e.g. --disable DRC105",
    )
    parser.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="RULE=SEVERITY",
        help="override a rule's severity (repeatable), "
        "e.g. --severity DRC106=error",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="combinational depth budget for DRC107",
    )
    parser.add_argument(
        "--max-fanout",
        type=int,
        default=None,
        help="fanout budget for DRC108",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser


def _parse_overrides(specs: List[str]) -> dict:
    overrides = {}
    for spec in specs:
        rule_id, _, severity = spec.partition("=")
        if not severity:
            raise ValueError(
                f"bad --severity {spec!r}; expected RULE=SEVERITY"
            )
        if rule_id not in REGISTRY:
            raise ValueError(f"--severity names unknown rule {rule_id!r}")
        overrides[rule_id] = Severity.parse(severity)
    return overrides


def _build_config(args: argparse.Namespace) -> LintConfig:
    for rule_id in args.disable:
        if rule_id not in REGISTRY:
            raise ValueError(f"--disable names unknown rule {rule_id!r}")
    config = LintConfig(
        disabled=frozenset(args.disable),
        severity_overrides=_parse_overrides(args.severity),
        fail_on=Severity.parse(args.fail_on),
    )
    if args.max_depth is not None:
        config = config.with_overrides(max_depth=args.max_depth)
    if args.max_fanout is not None:
        config = config.with_overrides(max_fanout=args.max_fanout)
    return config


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        sys.stdout.write(render_rule_listing(REGISTRY))
        return 0
    if not args.files:
        parser.print_usage(sys.stderr)
        sys.stderr.write("error: no input files (or --list-rules)\n")
        return 2
    if args.update_baseline and not args.baseline:
        sys.stderr.write("error: --update-baseline requires --baseline\n")
        return 2

    try:
        config = _build_config(args)
    except ValueError as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 2

    from ..circuit.blif import load_blif

    reports: List[Tuple[str, LintReport]] = []
    for path in args.files:
        try:
            circuit = load_blif(path)
        except (OSError, ReproError) as exc:
            sys.stderr.write(f"error: {path}: {exc}\n")
            return 2
        reports.append((circuit.name, run_lint(circuit, config)))

    if args.update_baseline:
        baseline, annotations = baseline_from_reports(reports)
        baseline.save(args.baseline, annotations)
        sys.stderr.write(
            f"wrote {len(baseline)} fingerprint(s) to {args.baseline}\n"
        )
        return 0

    if args.baseline:
        baseline = Baseline.load(args.baseline)
        reports = [
            (scope, baseline.apply(report, scope))
            for scope, report in reports
        ]

    rendered = [report for _, report in reports]
    if args.format == "json":
        sys.stdout.write(render_json(rendered))
    else:
        sys.stdout.write(render_text(rendered))

    return max(report.exit_code(config.fail_on) for report in rendered)


if __name__ == "__main__":
    from .._util import note_legacy_entry

    note_legacy_entry("python -m repro.lint", "python -m repro lint")
    sys.exit(main())
