"""``repro.lint`` — rule-based netlist DRC (static analysis before ATPG).

The paper's core finding is that structural ATPG wastes its budget on
netlists whose *static* structure hides pathologies: invalid-state-
dominated encodings, uninitializable machines, unobservable registers.
This package catches those defects before any test-generation CPU is
spent:

* a **rule registry** (:data:`REGISTRY`) of analyses with stable IDs —
  ``DRC001``-``DRC005`` ported from ``repro.circuit.validate``,
  ``DRC101``-``DRC108`` new structural screens (combinational cycles,
  constant nets, stuck registers, retiming-unsafe inits, SCOAP
  saturation, encoding-density red flags, depth/fanout budgets);
* structured :class:`Diagnostic` objects with severity
  (:class:`Severity`, ordered), subject, message and fix hints;
* text / JSON reporters and a :class:`Baseline` suppression format;
* pipeline gates (:func:`gate_circuit`) used post-synthesis and
  pre-ATPG by the experiment harness;
* a CLI: ``python -m repro.lint <file.blif> [--format json]
  [--fail-on warning]``.
"""

from .severity import Severity
from .core import (
    Diagnostic,
    LintConfig,
    LintContext,
    LintReport,
    REGISTRY,
    Rule,
    RuleRegistry,
    rule,
    run_lint,
)
from . import rules as _rules  # noqa: F401  — populate the registry
from .report import render_json, render_rule_listing, render_text
from .baseline import Baseline, baseline_from_reports
from .gate import GLOBAL_LEDGER, GateMode, LintLedger, gate_circuit

__all__ = [
    "Baseline",
    "Diagnostic",
    "GLOBAL_LEDGER",
    "GateMode",
    "LintConfig",
    "LintContext",
    "LintLedger",
    "LintReport",
    "REGISTRY",
    "Rule",
    "RuleRegistry",
    "Severity",
    "baseline_from_reports",
    "gate_circuit",
    "render_json",
    "render_rule_listing",
    "render_text",
    "rule",
    "run_lint",
]
