"""HITEC-style structural sequential ATPG.

For each collapsed fault the engine runs the classical two phases
([4], [11] in the paper):

1. **Forward phase** (:class:`~repro.atpg.podem.FaultPodem`): excite the
   fault in frame 0 with a *free* machine state and propagate a D/D̄ to
   a primary output within a growing time-frame window.
2. **State justification** (:class:`Justifier`): drive the machine from
   the reset state into the excitation state.  Three knowledge sources
   are tried in order, as HITEC did:

   * the reset state itself (cube compatible → empty prefix);
   * the **known-state database** — states the fault-free machine was
     already driven through by previously emitted tests, each with a
     stored input prefix;
   * backward preimage search — one
     :class:`~repro.atpg.podem.JustifyPodem` per step, DFS over state
     cubes, probing one-step-reachability from reset at every level.

   The backward search is where structural ATPG meets the paper's
   *density of encoding*: on retimed circuits most cubes the search
   proposes are invalid (unreachable), and proving that burns budget.

Every candidate test is validated end-to-end with the fault simulator
before any credit is taken (justification runs on the fault-free
machine, so a fault corrupting its own activation prefix is caught here
and the search continues with the next solution).  Detected tests are
fault-simulated against all open faults (fault dropping).

Classification:

* ``detected`` — validated test emitted;
* ``redundant`` — the search space was *exhausted* without budget cuts:
  either no excitation/propagation exists within the maximum window, or
  every excitation state was exhaustively proven unreachable (the
  paper's invalid-SRFs);
* ``aborted`` — some budget (backtracks, window, depth, preimages,
  wall clock) cut the search, mirroring the paper's halted runs.

Redundancy claims are bounded by the frame window and justification
depth; the property tests cross-check them against long random fault
simulation.  Construct with ``learning=True`` for the SEST-style engine
(illegal state cubes cached across faults).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import ONE, X, ZERO
from ..circuit.netlist import Circuit
from ..errors import AtpgError
from ..fault.collapse import collapse_faults
from ..fault.model import Fault, FaultStatus
from ..fault.simulator import FaultSimulator
from ..obs import Observability, annotate
from ..obs.coverage import (
    ABORT_FRAME_LIMIT,
    ABORT_TIME_BUDGET,
    NULL_COVERAGE_OBSERVER,
    CoverageObserver,
    PROV_FAULT_DROP,
    PROV_RANDOM_PHASE,
)
from ..obs.search import NULL_SEARCH_OBSERVER, SearchObserver, StateClassifier
from ..sim.logicsim import TernarySimulator
from .._util import make_rng
from .frames import UnrolledModel
from .learning import IllegalStateCache, cube_key
from .podem import FaultPodem, JustifyPodem, SearchMeter
from .result import (
    AtpgResult,
    Checkpoint,
    EffortBudget,
    Stopwatch,
    TestSet,
    WorkClock,
)

State = Tuple[int, ...]
Vector = List[int]

# Virtual-clock work charges (deterministic_clock budgets only): one
# backtrack costs 1 unit (charged by SearchMeter); these cover the
# other dominant work items so checkpoint times keep advancing even on
# faults that never backtrack.
_COST_FRAME_WINDOW = 5  # one time-frame window expansion
_COST_SEQUENCE_SIM = 5  # one sequence through the fault simulator


@dataclasses.dataclass
class _FaultOutcome:
    state: str  # detected | redundant | aborted
    sequence: Optional[List[Vector]] = None
    backtracks: int = 0
    frames_expanded: int = 0
    # Which budget cut an aborted search (repro.obs.coverage ABORT_*
    # taxonomy); ``aborted`` stays the rolled-up state in every table.
    abort_reason: Optional[str] = None


class Justifier:
    """State justification with reset probing, a known-state database,
    and backward preimage DFS."""

    def __init__(
        self,
        circuit: Circuit,
        budget: EffortBudget,
        learning: Optional[IllegalStateCache],
        states_seen: Set[State],
        fill_seed: int = 31,
        trace=None,
        observer=NULL_SEARCH_OBSERVER,
    ):
        self.circuit = circuit
        self.budget = budget
        self.learning = learning
        self.states_seen = states_seen
        self._trace = trace
        # Search-state observatory hook: every cube the DFS examines is
        # streamed here for valid/invalid classification.
        self.observer = observer
        # Fully-specified state cubes the backward search *examined*
        # (visited states are tracked separately via remember_trace —
        # the paper's "#states HITEC trav" counts machine states the
        # test-generation process drove through or targeted).
        self.states_examined: Set[State] = set()
        self._rng = make_rng(fill_seed)
        self._num_pis = len(circuit.inputs)
        self._reset_state = [
            ONE if dff.init == ONE else ZERO for dff in circuit.dffs()
        ]
        # Fault-free states already visited by emitted tests, each with
        # the input prefix (from reset) that reaches it.
        self.known_states: Dict[State, List[Vector]] = {
            tuple(self._reset_state): []
        }
        # One single-frame fault-free model per recursion depth, reused
        # across faults (model compilation is not free).
        self._model_pool: List[UnrolledModel] = []
        self.cubes_examined = 0

    # -- knowledge maintenance ------------------------------------------------

    def remember_trace(
        self, simulator: TernarySimulator, sequence: Sequence[Vector]
    ) -> None:
        """Record every state a validated test drives the machine
        through, with its prefix, for reuse by later justifications."""
        state = simulator.initial_state()
        for index, vector in enumerate(sequence):
            _, state = simulator.step(vector, state)
            if X in state:
                # A partially-known state is useless as a justification
                # shortcut (no stored prefix provably reaches it), but
                # silently dropping it under-reports the traversal — the
                # observatory counts every occurrence.
                self.observer.note_partial_state()
                continue
            key = tuple(state)
            if key not in self.known_states:
                self.known_states[key] = [list(v) for v in sequence[: index + 1]]
            self.states_seen.add(key)

    # -- queries ------------------------------------------------------------------

    def compatible_with_reset(self, cube: Dict[int, int]) -> bool:
        return all(
            self._reset_state[position] == value
            for position, value in cube.items()
        )

    def _known_prefix(self, cube: Dict[int, int]) -> Optional[List[Vector]]:
        best: Optional[List[Vector]] = None
        for state, prefix in self.known_states.items():
            if all(state[pos] == val for pos, val in cube.items()):
                if best is None or len(prefix) < len(best):
                    best = prefix
        return best

    # -- main entry ------------------------------------------------------------------

    def justify(
        self, cube: Dict[int, int], meter: SearchMeter
    ) -> Tuple[Optional[List[Vector]], bool]:
        """Input vectors driving reset → a state compatible with ``cube``.

        Returns ``(vectors, exhaustive)``; vectors is None on failure and
        ``exhaustive`` tells whether that failure is a *proof* (no budget
        was hit anywhere in the subtree).
        """
        if self._trace is None or not self._trace.enabled:
            return self._dfs(cube, depth=0, meter=meter, path=[])
        with self._trace.span("atpg.justify", bits=len(cube)):
            return self._dfs(cube, depth=0, meter=meter, path=[])

    def _dfs(
        self,
        cube: Dict[int, int],
        depth: int,
        meter: SearchMeter,
        path: List[Tuple[Tuple[int, int], ...]],
    ) -> Tuple[Optional[List[Vector]], bool]:
        self.cubes_examined += 1
        self._record_state(cube)
        self.observer.observe_cube(cube)
        known = self._known_prefix(cube)
        if known is not None:
            return list(known), True
        if meter.exhausted():
            return None, False
        if depth >= self.budget.max_justify_depth:
            return None, False
        if self.learning is not None and self.learning.is_illegal(cube):
            self.observer.note_learned_prune()
            return None, True
        key = cube_key(cube)
        if key in path:
            return None, True  # ancestor cycle: nothing new on this path

        # One-step probe: is the cube reachable directly from a state we
        # already know how to reach?  (The reset state is always known.)
        probe = self._probe_known_states(cube, meter)
        if probe is not None:
            return probe, True

        model = self._model_for_depth(depth)
        search = JustifyPodem(model, meter, cube)
        exhaustive = True
        solutions_tried = 0
        path.append(key)
        try:
            for solution in search.solutions():
                solutions_tried += 1
                prefix, sub_exhaustive = self._dfs(
                    solution.state_cube, depth + 1, meter, path
                )
                if prefix is not None:
                    return prefix + [self._fill(solution.pi_assignment)], True
                if not sub_exhaustive:
                    exhaustive = False
                if solutions_tried >= self.budget.max_preimages:
                    exhaustive = False
                    break
            if not search.outcome.exhausted:
                exhaustive = False
        finally:
            path.pop()
        if exhaustive and self.learning is not None:
            self.learning.learn(cube)
        return None, exhaustive

    # -- helpers ---------------------------------------------------------------------

    def _probe_known_states(
        self, cube: Dict[int, int], meter: SearchMeter, max_probes: int = 4
    ) -> Optional[List[Vector]]:
        """Try to reach ``cube`` in one step from a known state (shortest
        prefixes first)."""
        candidates = sorted(
            self.known_states.items(), key=lambda item: len(item[1])
        )[:max_probes]
        for state, prefix in candidates:
            if meter.exhausted():
                return None
            model = self._probe_model()
            for position, value in enumerate(state):
                model.state_assignment[position] = value
            search = JustifyPodem(model, meter, cube)
            for solution in search.solutions():
                return prefix + [self._fill(solution.pi_assignment)]
        return None

    def _probe_model(self) -> UnrolledModel:
        model = getattr(self, "_probe_model_cache", None)
        if model is None:
            model = UnrolledModel(self.circuit, fault=None, max_frames=1)
            self._probe_model_cache = model
        model.reset_assignments()
        model.set_frames(1)
        return model

    def _model_for_depth(self, depth: int) -> UnrolledModel:
        while len(self._model_pool) <= depth:
            self._model_pool.append(
                UnrolledModel(self.circuit, fault=None, max_frames=1)
            )
        model = self._model_pool[depth]
        model.reset_assignments()
        model.set_frames(1)
        return model

    def _fill(self, pi_assignment: Dict[Tuple[int, int], int]) -> Vector:
        return [
            pi_assignment.get((0, position), self._rng.randrange(2))
            for position in range(self._num_pis)
        ]

    def _record_state(self, cube: Dict[int, int]) -> None:
        if len(cube) == len(self._reset_state):
            self.states_examined.add(
                tuple(cube[i] for i in range(len(self._reset_state)))
            )


class HitecEngine:
    """The primary structural sequential ATPG of this reproduction."""

    name = "hitec"

    def __init__(
        self,
        circuit: Circuit,
        budget: Optional[EffortBudget] = None,
        learning: bool = False,
        rng_seed: int = 17,
        obs: Optional[Observability] = None,
        sim_backend: str = "compiled",
    ):
        circuit.check()
        if any(dff.init == X for dff in circuit.dffs()):
            raise AtpgError(
                f"circuit {circuit.name!r} has no reset state; this "
                "study's engines require one (see DESIGN.md)"
            )
        self.circuit = circuit
        self.budget = budget or EffortBudget.paper()
        if learning:
            self.name = "sest"
        self.obs = obs if obs is not None else Observability()
        labels = {"engine": self.name, "circuit": circuit.name}
        registry = self.obs.metrics
        self._ctr_backtracks = registry.counter("atpg.backtracks", **labels)
        self._ctr_frames = registry.counter("atpg.frames_expanded", **labels)
        self._ctr_detected = registry.counter(
            "atpg.faults_detected", **labels
        )
        self._ctr_redundant = registry.counter(
            "atpg.faults_redundant", **labels
        )
        self._ctr_aborted = registry.counter("atpg.faults_aborted", **labels)
        self._hist_fault_backtracks = registry.histogram(
            "atpg.fault_backtracks", **labels
        )
        self.learning_cache = (
            IllegalStateCache(metrics=registry, **labels) if learning else None
        )
        self._rng = make_rng(rng_seed)
        self._simulator = FaultSimulator(
            circuit, metrics=registry, backend=sim_backend
        )
        self._good_sim = TernarySimulator(circuit)
        self._num_pis = len(circuit.inputs)
        # One valid/invalid oracle per engine instance: the reachable
        # set and every classification verdict are memoized across
        # faults and across runs (the per-run observer only owns the
        # tallies).
        self._classifier = StateClassifier(circuit)

    @property
    def metrics(self):
        """The engine's :class:`~repro.obs.MetricsRegistry` handle."""
        return self.obs.metrics

    # -- public API --------------------------------------------------------

    def run(self, faults: Optional[Sequence[Fault]] = None) -> AtpgResult:
        """Generate tests for every fault (collapsed list by default)."""
        if faults is None:
            faults = collapse_faults(self.circuit).representatives
        trace = self.obs.trace
        clock = WorkClock() if self.budget.deterministic_clock else None
        trace.use_clock(clock)
        try:
            with trace.span(
                "atpg.run", engine=self.name, circuit=self.circuit.name
            ):
                return self._run(faults, clock, trace)
        finally:
            trace.use_clock(None)

    def _run(
        self,
        faults: Sequence[Fault],
        clock: Optional[WorkClock],
        trace,
    ) -> AtpgResult:
        statuses = {fault: FaultStatus(fault) for fault in faults}
        test_set = TestSet()
        checkpoints: List[Checkpoint] = []
        states_seen: Set[State] = set()
        observer = SearchObserver(
            self._classifier,
            self.obs.metrics,
            engine=self.name,
            circuit=self.circuit.name,
        )
        coverage = CoverageObserver(
            self.obs.metrics,
            engine=self.name,
            circuit=self.circuit.name,
        )
        justifier = Justifier(
            self.circuit,
            self.budget,
            self.learning_cache,
            states_seen,
            trace=trace,
            observer=observer,
        )
        total_watch = Stopwatch(self.budget.total_seconds, clock=clock)
        sim_events_start = self._simulator.events_counter.value
        detected = redundant = processed = 0
        backtracks = frames_expanded = 0
        total = len(statuses)

        # Phase 0: random test generation.  Detects the easy faults at
        # fault-simulation cost and seeds the justifier's known-state
        # database with every state the kept sequences drive through.
        with trace.span("atpg.random_phase"):
            detected += self._random_phase(
                statuses,
                test_set,
                justifier,
                states_seen,
                total_watch,
                coverage,
            )
        self._ctr_detected.inc(detected)
        processed += detected
        checkpoints.append(
            Checkpoint(
                cpu_seconds=total_watch.elapsed(),
                detected=detected,
                redundant=0,
                processed=processed,
                total=total,
            )
        )

        for fault in faults:
            status = statuses[fault]
            if not status.is_open():
                continue
            if total_watch.expired():
                status.state = "aborted"
                self._ctr_aborted.inc()
                coverage.note_abort(
                    fault, ABORT_TIME_BUDGET, elapsed=total_watch.elapsed()
                )
                processed += 1
                continue
            observer.begin_fault()
            coverage.begin_fault(
                fault, sim_events=self._simulator.events_counter.value
            )
            with trace.span("atpg.fault", fault=str(fault)) as fault_span:
                outcome = self._process_fault(fault, justifier, total_watch)
                valid_seen, invalid_seen = observer.end_fault(
                    outcome.backtracks
                )
                annotate(
                    fault_span,
                    search_valid=valid_seen,
                    search_invalid=invalid_seen,
                )
            processed += 1
            backtracks += outcome.backtracks
            frames_expanded += outcome.frames_expanded
            self._ctr_frames.inc(outcome.frames_expanded)
            self._hist_fault_backtracks.observe(outcome.backtracks)
            if outcome.state == "detected":
                status.state = "detected"
                status.detected_by = len(test_set)
                test_set.add(outcome.sequence)
                detected += 1
                self._ctr_detected.inc()
                justifier.remember_trace(self._good_sim, outcome.sequence)
                # Fault dropping: run the new sequence over open faults.
                open_faults = [
                    f for f, s in statuses.items() if s.is_open()
                ]
                total_watch.charge(_COST_SEQUENCE_SIM)
                with trace.span("sim.fault_drop"):
                    report = self._simulator.run(
                        [outcome.sequence], faults=open_faults
                    )
                states_seen |= report.states_traversed
                # Close the targeted record after the drop pass, so the
                # drop-simulation events charge to the detecting fault.
                coverage.end_fault(
                    fault,
                    "detected",
                    detected_by=status.detected_by,
                    backtracks=outcome.backtracks,
                    frames=outcome.frames_expanded,
                    sim_events=self._simulator.events_counter.value,
                    elapsed=total_watch.elapsed(),
                )
                for dropped in report.detected:
                    statuses[dropped].state = "detected"
                    statuses[dropped].detected_by = len(test_set) - 1
                    detected += 1
                    self._ctr_detected.inc()
                    processed += 1
                    coverage.note_incidental(
                        dropped,
                        PROV_FAULT_DROP,
                        len(test_set) - 1,
                        elapsed=total_watch.elapsed(),
                    )
            elif outcome.state == "redundant":
                status.state = "redundant"
                redundant += 1
                self._ctr_redundant.inc()
                coverage.end_fault(
                    fault,
                    "redundant",
                    backtracks=outcome.backtracks,
                    frames=outcome.frames_expanded,
                    sim_events=self._simulator.events_counter.value,
                    elapsed=total_watch.elapsed(),
                )
            else:
                status.state = "aborted"
                self._ctr_aborted.inc()
                coverage.end_fault(
                    fault,
                    "aborted",
                    abort_reason=outcome.abort_reason,
                    backtracks=outcome.backtracks,
                    frames=outcome.frames_expanded,
                    sim_events=self._simulator.events_counter.value,
                    elapsed=total_watch.elapsed(),
                )
            checkpoints.append(
                Checkpoint(
                    cpu_seconds=total_watch.elapsed(),
                    detected=detected,
                    redundant=redundant,
                    processed=processed,
                    total=total,
                )
            )

        return AtpgResult(
            circuit_name=self.circuit.name,
            engine=self.name,
            statuses=statuses,
            test_set=test_set,
            cpu_seconds=total_watch.elapsed(),
            checkpoints=checkpoints,
            states_traversed=states_seen,
            states_examined=justifier.states_examined,
            backtracks=backtracks,
            frames_expanded=frames_expanded,
            sim_events=self._simulator.events_counter.value
            - sim_events_start,
            search_counters=observer.counters(),
            fault_records=coverage.records(),
        )

    def _random_phase(
        self,
        statuses: Dict[Fault, FaultStatus],
        test_set: TestSet,
        justifier: Justifier,
        states_seen: Set[State],
        total_watch: Stopwatch,
        coverage=NULL_COVERAGE_OBSERVER,
    ) -> int:
        """Greedy random-sequence selection; returns #faults detected."""
        detected = 0
        open_faults = [f for f, s in statuses.items() if s.is_open()]
        for _ in range(self.budget.random_sequences):
            if not open_faults:
                break
            total_watch.charge(_COST_SEQUENCE_SIM)
            sequence = [
                [self._rng.randrange(2) for _ in range(self._num_pis)]
                for _ in range(self.budget.random_length)
            ]
            report = self._simulator.run([sequence], faults=open_faults)
            states_seen |= report.states_traversed
            if not report.detected:
                continue
            test_set.add(sequence)
            justifier.remember_trace(self._good_sim, sequence)
            for fault in report.detected:
                statuses[fault].state = "detected"
                statuses[fault].detected_by = len(test_set) - 1
                detected += 1
                coverage.note_incidental(
                    fault,
                    PROV_RANDOM_PHASE,
                    len(test_set) - 1,
                    elapsed=total_watch.elapsed(),
                )
            open_faults = [f for f in open_faults if f not in report.detected]
        return detected

    # -- per-fault search -------------------------------------------------------

    def _process_fault(
        self,
        fault: Fault,
        justifier: Justifier,
        total_watch: Stopwatch,
    ) -> _FaultOutcome:
        meter = SearchMeter(
            self.budget.max_backtracks,
            self.budget.per_fault_seconds,
            total_watch,
            counter=self._ctr_backtracks,
        )
        model = UnrolledModel(
            self.circuit, fault, max_frames=self.budget.max_frames
        )
        any_solution = False
        validation_failures = 0
        all_justify_exhaustive = True
        forward_exhausted_at_max = False
        windows_expanded = 0

        def _done(
            state: str, sequence=None, abort_reason=None
        ) -> _FaultOutcome:
            return _FaultOutcome(
                state,
                sequence,
                backtracks=meter.backtracks,
                frames_expanded=windows_expanded,
                abort_reason=abort_reason,
            )

        window = 1
        while window <= self.budget.max_frames:
            model.reset_assignments()
            model.set_frames(window)
            windows_expanded += 1
            total_watch.charge(_COST_FRAME_WINDOW)
            search = FaultPodem(model, meter)
            for solution in search.solutions():
                any_solution = True
                prefix, exhaustive = justifier.justify(
                    solution.state_cube, meter
                )
                if prefix is None:
                    if not exhaustive:
                        all_justify_exhaustive = False
                    continue
                sequence = self._randomize_fill(solution, prefix)
                if self._simulator.detects(sequence, fault):
                    return _done("detected", sequence)
                validation_failures += 1
                if meter.exhausted():
                    break
            if meter.exhausted():
                return _done(
                    "aborted", abort_reason=meter.exhausted_reason()
                )
            if window == self.budget.max_frames:
                forward_exhausted_at_max = search.outcome.exhausted
            window += 1

        if not any_solution and forward_exhausted_at_max:
            # No excitation+propagation exists even with a free machine
            # state: untestable within the window (combinational-style
            # redundancy).
            return _done("redundant")
        if (
            any_solution
            and forward_exhausted_at_max
            and all_justify_exhaustive
            and validation_failures == 0
        ):
            # Every excitation state was exhaustively proven unreachable:
            # the paper's invalid-SRF.
            return _done("redundant")
        # The window loop ran out with the meter still live: the frame
        # limit — not a backtrack or time budget — cut the search.
        return _done("aborted", abort_reason=ABORT_FRAME_LIMIT)

    def _randomize_fill(self, solution, prefix: List[Vector]) -> List[Vector]:
        """Concatenate the justification prefix and the forward-phase
        vectors, filling the forward phase's unassigned PIs
        pseudo-randomly (any fill preserves the values the five-valued
        search certified)."""
        sequence = [list(v) for v in prefix]
        for frame in range(solution.frames_used):
            vector = [
                solution.pi_assignment.get(
                    (frame, position), self._rng.randrange(2)
                )
                for position in range(self._num_pis)
            ]
            sequence.append(vector)
        return sequence


def run_hitec(
    circuit: Circuit,
    budget: Optional[EffortBudget] = None,
    faults: Optional[Sequence[Fault]] = None,
    obs: Optional[Observability] = None,
) -> AtpgResult:
    """Convenience one-call HITEC run (thin wrapper over the registry)."""
    from .registry import get_engine

    return get_engine("hitec", circuit, budget=budget, obs=obs).run(faults)
