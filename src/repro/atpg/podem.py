"""PODEM search over the iterative-array model.

Two goal flavors share one decision engine:

* :class:`FaultPodem` — excite the fault in frame 0 and drive a D/D̄ to
  a primary output within the frame window (the HITEC forward phase).
* :class:`JustifyPodem` — make frame-0's next-state lines produce a
  required state cube (one backward step of state justification).

Both enumerate *multiple* solutions: after yielding one, the engine
backtracks and continues, so callers can try alternative excitation
states or preimages when a downstream step fails.  All search effort is
charged to a shared :class:`SearchMeter`, the budget the paper's
aborted-fault accounting hangs on.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import (
    D,
    DBAR,
    GateType,
    ONE,
    X,
    ZERO,
    five_split,
)
from ..circuit.netlist import NodeKind
from ..errors import AtpgError
from ..obs.coverage import ABORT_BACKTRACK_LIMIT, ABORT_TIME_BUDGET
from .frames import UnrolledModel, Variable
from .result import Stopwatch


class SearchMeter:
    """Shared effort accounting: backtracks and deadlines.

    ``counter`` is an obs :class:`~repro.obs.Counter` (typically
    ``atpg.backtracks{engine=...,circuit=...}``) mirroring the local
    ``backtracks`` tally into the run's metrics registry; the local
    field stays authoritative for budget enforcement and per-fault
    deltas.
    """

    def __init__(
        self,
        max_backtracks: int,
        per_fault_seconds: float,
        total_watch: Optional[Stopwatch] = None,
        counter=None,
    ):
        self.max_backtracks = max_backtracks
        self.backtracks = 0
        # The per-fault watch ticks on the same clock as the per-circuit
        # watch, so a deterministic WorkClock governs both deadlines.
        clock = total_watch.clock if total_watch is not None else None
        self._fault_watch = Stopwatch(per_fault_seconds, clock=clock)
        self._total_watch = total_watch
        self._counter = counter

    def charge_backtrack(self) -> bool:
        """Count one backtrack; False when the budget is exhausted."""
        self.backtracks += 1
        if self._counter is not None:
            self._counter.inc()
        self._fault_watch.charge(1)
        return not self.exhausted()

    def exhausted(self) -> bool:
        return self.exhausted_reason() is not None

    def exhausted_reason(self) -> Optional[str]:
        """Which budget cut the search, as an ``ABORT_*`` taxonomy
        entry from :mod:`repro.obs.coverage` (None = budget left).

        Check order mirrors the historical ``exhausted()`` priority:
        the backtrack count first, then either deadline — both watches
        tick the same WorkClock, so one taxonomy entry covers them.
        """
        if self.backtracks >= self.max_backtracks:
            return ABORT_BACKTRACK_LIMIT
        if self._fault_watch.expired():
            return ABORT_TIME_BUDGET
        if self._total_watch is not None and self._total_watch.expired():
            return ABORT_TIME_BUDGET
        return None


@dataclasses.dataclass
class Solution:
    """One satisfying assignment found by PODEM."""

    pi_assignment: Dict[Tuple[int, int], int]  # (frame, pi) -> 0/1
    state_cube: Dict[int, int]  # dff position -> 0/1 (frame-0 requirement)
    frames_used: int

    def vectors(self, num_pis: int, fill: int = ZERO) -> List[List[int]]:
        """Concrete input vectors, unassigned PIs filled with ``fill``."""
        result = []
        for frame in range(self.frames_used):
            vector = [
                self.pi_assignment.get((frame, position), fill)
                for position in range(num_pis)
            ]
            result.append(vector)
        return result


@dataclasses.dataclass
class SearchOutcome:
    """How a (possibly multi-solution) search ended."""

    exhausted: bool  # True: full space explored; False: budget cut it


class _Decision:
    __slots__ = ("variable", "value", "flipped")

    def __init__(self, variable: Variable, value: int):
        self.variable = variable
        self.value = value
        self.flipped = False


class _PodemBase:
    """Decision/backtrace/backtrack engine; subclasses define the goal."""

    def __init__(self, model: UnrolledModel, meter: SearchMeter):
        self.model = model
        self.meter = meter
        self.outcome = SearchOutcome(exhausted=False)

    # -- subclass interface -------------------------------------------------

    def goal_satisfied(self, frames: List[List[int]]) -> bool:
        raise NotImplementedError

    def goal_impossible(self, frames: List[List[int]]) -> bool:
        """True when no extension of the current assignment can reach the
        goal (triggers a backtrack without wasting decisions)."""
        raise NotImplementedError

    def next_objective(
        self, frames: List[List[int]]
    ) -> Optional[Tuple[int, int, int]]:
        """(frame, node_index, desired_value) to pursue next, or None if
        no objective can be formed (triggers a backtrack)."""
        raise NotImplementedError

    # -- main loop -------------------------------------------------------------

    def solutions(self) -> Iterator[Solution]:
        """Yield solutions until the space or the budget is exhausted.

        ``self.outcome.exhausted`` is True afterwards iff the search space
        was fully explored (the distinction between *proven* and *aborted*
        in the fault accounting).
        """
        model = self.model
        stack: List[_Decision] = []
        while True:
            if self.meter.exhausted():
                self.outcome.exhausted = False
                return
            frames = model.simulate()
            if self.goal_satisfied(frames):
                yield Solution(
                    pi_assignment=dict(model.pi_assignment),
                    state_cube=model.state_cube(),
                    frames_used=model.num_frames,
                )
                if not self._backtrack(stack):
                    return
                continue
            if self.goal_impossible(frames):
                if not self._backtrack(stack):
                    return
                continue
            objective = self.next_objective(frames)
            if objective is None:
                if not self._backtrack(stack):
                    return
                continue
            variable, value = self._backtrace(frames, objective)
            if variable is None:
                if not self._backtrack(stack):
                    return
                continue
            decision = _Decision(variable, value)
            model.assign(variable, value)
            stack.append(decision)

    def _backtrack(self, stack: List[_Decision]) -> bool:
        """Undo the latest un-flipped decision; False ends the search."""
        if not self.meter.charge_backtrack():
            self.outcome.exhausted = False
            return False
        while stack:
            decision = stack[-1]
            if decision.flipped:
                self.model.unassign(decision.variable)
                stack.pop()
                continue
            decision.flipped = True
            decision.value = ONE if decision.value == ZERO else ZERO
            self.model.assign(decision.variable, decision.value)
            return True
        self.outcome.exhausted = True
        return False

    # -- backtrace ---------------------------------------------------------------

    def _backtrace(
        self, frames: List[List[int]], objective: Tuple[int, int, int]
    ) -> Tuple[Optional[Variable], int]:
        """Walk an objective back to an unassigned decision variable.

        Returns (variable, value) or (None, 0) when the objective is not
        reachable from any free variable (all X-paths blocked).
        """
        model = self.model
        frame, index, value = objective
        guard = 0
        while True:
            guard += 1
            if guard > 10000:
                raise AtpgError("backtrace failed to terminate")
            name = model.name_of(index)
            node = model.circuit.node(name)
            if node.kind is NodeKind.INPUT:
                position = model.circuit.inputs.index(name)
                variable = Variable("pi", frame, position)
                if model.value_of(variable) is not None:
                    return None, 0
                return variable, value
            if node.kind is NodeKind.DFF:
                if frame == 0:
                    position = list(model.circuit.dff_names()).index(name)
                    variable = Variable("state", 0, position)
                    if model.value_of(variable) is not None:
                        return None, 0
                    return variable, value
                frame -= 1
                index = model.dff_d_indices()[
                    list(model.circuit.dff_names()).index(name)
                ]
                continue
            gate = node.gate
            if gate in (GateType.CONST0, GateType.CONST1):
                return None, 0
            fanin = model.node_fanin(index)
            values = frames[frame]
            if gate is GateType.BUF:
                index = fanin[0]
                continue
            if gate is GateType.NOT:
                index = fanin[0]
                value = ONE if value == ZERO else ZERO
                continue
            if gate in (GateType.XOR, GateType.XNOR):
                # Choose the first X input; required value depends on the
                # other inputs' parity, undetermined until they settle —
                # aim for the parity assuming other X inputs become 0.
                parity = ONE if gate is GateType.XNOR else ZERO
                chosen = None
                acc = 0
                for input_index in fanin:
                    good, _ = five_split(values[input_index])
                    if good == X and chosen is None:
                        chosen = input_index
                    elif good in (ZERO, ONE):
                        acc ^= good
                if chosen is None:
                    return None, 0
                needed = acc ^ value ^ (1 if parity == ONE else 0)
                index = chosen
                value = ONE if needed else ZERO
                continue
            controlling = gate.controlling_value()
            inverted = gate.is_inverting
            effective = value
            if inverted:
                effective = ONE if value == ZERO else ZERO
            # effective is now the target of the underlying AND/OR core.
            if gate in (GateType.AND, GateType.NAND):
                need = effective  # 1: all inputs 1; 0: one input 0
                want_all = need == ONE
            else:  # OR / NOR
                need = effective  # 1: one input 1; 0: all inputs 0
                want_all = need == ZERO
            x_inputs = [
                i
                for i in fanin
                if five_split(values[i])[0] == X
            ]
            if not x_inputs:
                return None, 0
            if want_all:
                # Every input must take the non-controlling value; walk
                # the hardest (deepest) X input first.
                index = max(x_inputs, key=lambda i: self._depth(i))
                value = (
                    ONE if gate in (GateType.AND, GateType.NAND) else ZERO
                )
            else:
                # One controlling input suffices; walk the easiest.
                index = min(x_inputs, key=lambda i: self._depth(i))
                value = controlling
            continue

    def _depth(self, index: int) -> int:
        # Static proxy for controllability: distance from observation
        # structures; reuse dist_po as a cheap depth surrogate.
        distance = self.model.dist_po[index]
        return distance if distance < 10 ** 9 else 0


class FaultPodem(_PodemBase):
    """Excite the fault (frame 0) and propagate a D/D̄ to some PO."""

    def __init__(self, model: UnrolledModel, meter: SearchMeter):
        if model.fault is None:
            raise AtpgError("FaultPodem needs a model with a fault")
        super().__init__(model, meter)
        self._fault_index = model.index_of(model.fault.node)
        self._activation = (
            ONE if model.fault.stuck_at == ZERO else ZERO
        )

    def goal_satisfied(self, frames: List[List[int]]) -> bool:
        for values in frames:
            for po_index in self.model.po_indices():
                if values[po_index] in (D, DBAR):
                    return True
        return False

    def goal_impossible(self, frames: List[List[int]]) -> bool:
        good0, _ = five_split(frames[0][self._fault_index])
        if good0 == X:
            return False  # excitation still open
        if good0 != self._activation:
            return True  # frame-0 excitation conflicts: this branch dies
        # Excited: fault effect must still have an escape route.
        return not self._x_path_exists(frames)

    def next_objective(
        self, frames: List[List[int]]
    ) -> Optional[Tuple[int, int, int]]:
        good0, _ = five_split(frames[0][self._fault_index])
        if good0 == X:
            return (0, self._fault_index, self._activation)
        frontier = self._d_frontier(frames)
        if not frontier:
            return None
        frame, gate_index = frontier[0]
        values = frames[frame]
        gate = self.model.node_gate(gate_index)
        noncontrolling = gate.noncontrolling_value()
        for input_index in self.model.node_fanin(gate_index):
            good, _ = five_split(values[input_index])
            if good == X:
                target = (
                    noncontrolling if noncontrolling != X else ONE
                )
                return (frame, input_index, target)
        return None

    def _d_frontier(
        self, frames: List[List[int]]
    ) -> List[Tuple[int, int]]:
        """Gates with a D/D̄ input and an X output, best-first.

        Preference: smaller distance to a PO, then smaller distance to a
        register D-input (a route into the next frame), then later frame
        (fault effects that already travelled far).
        """
        model = self.model
        frontier: List[Tuple[int, int]] = []
        scores: Dict[Tuple[int, int], Tuple] = {}
        for frame, values in enumerate(frames):
            for out_index, gate, fanin_index in model._plan:
                if values[out_index] != X:
                    continue
                if not any(values[i] in (D, DBAR) for i in fanin_index):
                    continue
                key = (frame, out_index)
                frontier.append(key)
                room = model.max_frames - frame
                scores[key] = (
                    model.dist_po[out_index],
                    model.dist_dff[out_index] if room > 1 else 10 ** 9,
                    -frame,
                )
        frontier.sort(key=lambda k: scores[k])
        return frontier

    def _x_path_exists(self, frames: List[List[int]]) -> bool:
        """Can any D/D̄ still reach a PO through X-valued nodes, within
        the maximum window (frames beyond the current window count as
        fully X)?"""
        model = self.model
        po_set = set(model.po_indices())
        # Seed: nodes carrying D in any simulated frame.
        reached: Set[Tuple[int, int]] = set()
        worklist: List[Tuple[int, int]] = []
        for frame, values in enumerate(frames):
            for index, value in enumerate(values):
                if value in (D, DBAR):
                    if index in po_set:
                        return True
                    reached.add((frame, index))
                    worklist.append((frame, index))
        fanouts = model.circuit.fanouts()
        dff_positions = {
            name: pos
            for pos, name in enumerate(model.circuit.dff_names())
        }
        while worklist:
            frame, index = worklist.pop()
            name = model.name_of(index)
            for reader in fanouts[name]:
                reader_node = model.circuit.node(reader)
                reader_index = model.index_of(reader)
                if reader_node.kind is NodeKind.DFF:
                    next_frame = frame + 1
                    if next_frame >= model.max_frames:
                        continue
                    key = (next_frame, reader_index)
                    if key in reached:
                        continue
                    reached.add(key)
                    worklist.append(key)
                    if reader in dff_positions and reader_index in po_set:
                        return True
                    continue
                if frame < len(frames):
                    value = frames[frame][reader_index]
                    if value not in (X, D, DBAR):
                        continue  # blocked by a fixed value
                if reader_index in po_set:
                    return True
                key = (frame, reader_index)
                if key in reached:
                    continue
                reached.add(key)
                worklist.append(key)
        return False


class JustifyPodem(_PodemBase):
    """Make frame-0's next-state lines meet a required state cube."""

    def __init__(
        self,
        model: UnrolledModel,
        meter: SearchMeter,
        required: Dict[int, int],
    ):
        if model.fault is not None:
            raise AtpgError("JustifyPodem runs on the fault-free model")
        super().__init__(model, meter)
        if model.num_frames != 1:
            model.set_frames(1)
        self.required = dict(required)
        self._targets = [
            (model.dff_d_indices()[position], value)
            for position, value in sorted(self.required.items())
        ]

    def goal_satisfied(self, frames: List[List[int]]) -> bool:
        values = frames[0]
        for index, value in self._targets:
            good, _ = five_split(values[index])
            if good != value:
                return False
        return True

    def goal_impossible(self, frames: List[List[int]]) -> bool:
        values = frames[0]
        for index, value in self._targets:
            good, _ = five_split(values[index])
            if good != X and good != value:
                return True
        return False

    def next_objective(
        self, frames: List[List[int]]
    ) -> Optional[Tuple[int, int, int]]:
        values = frames[0]
        for index, value in self._targets:
            good, _ = five_split(values[index])
            if good == X:
                return (0, index, value)
        return None
