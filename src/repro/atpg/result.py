"""Result and budget types shared by every ATPG engine.

The paper's accounting is reproduced exactly:

* **fault coverage** (%FC) — detected / total faults;
* **fault efficiency** (%FE) — (detected + proven redundant) / total;
* **CPU seconds** — engine process time; absolute values are machine
  dependent, the harness reports the retimed/original *ratio* like the
  paper's ``CPU ratio`` column;
* **checkpoints** — (cpu_seconds, fault efficiency so far) samples taken
  after every fault, which regenerate Figure 3's FE-vs-CPU curves.

Engines never run unbounded: an :class:`EffortBudget` caps backtracks,
time-frame window, justification depth and wall clock.  A fault whose
search hits a budget is *aborted* — it counts against both coverage and
efficiency, exactly as the paper's 12-hour manual-halt rule did.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..fault.model import CoverageSummary, Fault, FaultStatus, summarize
from ..obs.coverage.report import lifecycle_counter_block


@dataclasses.dataclass
class EffortBudget:
    """Search-effort limits for one ATPG run."""

    max_backtracks: int = 1200  # PODEM backtracks per fault (both phases)
    max_frames: int = 8  # forward (propagation) window, frames
    max_justify_depth: int = 24  # backward justification recursion depth
    max_preimages: int = 6  # preimage solutions explored per state cube
    per_fault_seconds: float = 5.0  # wall clock per fault
    total_seconds: float = 1800.0  # wall clock per circuit
    # Random test generation (RTG) phase before deterministic search:
    # cheap detection of the easy faults plus the state-knowledge seed
    # every classical flow starts from.
    random_sequences: int = 64
    random_length: int = 40
    # Replace the process-time stopwatch with a work-counting virtual
    # clock.  Engine results (including every reported cpu_seconds)
    # then depend only on the inputs and seeds, never on machine load —
    # required for bit-exact serial-vs-parallel harness equivalence.
    deterministic_clock: bool = False

    @classmethod
    def quick(cls) -> "EffortBudget":
        """Small budget for tests and smoke runs."""
        return cls(
            max_backtracks=300,
            max_frames=5,
            max_justify_depth=12,
            max_preimages=4,
            per_fault_seconds=1.0,
            total_seconds=120.0,
            random_sequences=24,
            random_length=30,
        )

    @classmethod
    def paper(cls) -> "EffortBudget":
        """The default for the table-regeneration harness."""
        return cls()

    def scaled(self, factor: float) -> "EffortBudget":
        """A proportionally smaller (or larger) budget.

        The experiment runner retries timed-out cells with
        ``budget.scaled(0.5)`` so a pathological circuit converges to an
        abortable effort level instead of stalling the whole run.
        Integer knobs keep a floor of 1 so a scaled budget still makes
        progress.
        """
        def _units(value: int) -> int:
            return max(1, int(value * factor))

        return dataclasses.replace(
            self,
            max_backtracks=_units(self.max_backtracks),
            max_frames=_units(self.max_frames),
            max_justify_depth=_units(self.max_justify_depth),
            max_preimages=_units(self.max_preimages),
            per_fault_seconds=max(1e-3, self.per_fault_seconds * factor),
            total_seconds=max(1e-3, self.total_seconds * factor),
            random_sequences=_units(self.random_sequences),
            random_length=_units(self.random_length),
        )


@dataclasses.dataclass
class Checkpoint:
    """One Figure-3 sample."""

    cpu_seconds: float
    detected: int
    redundant: int
    processed: int
    total: int

    @property
    def fault_efficiency(self) -> float:
        if self.total == 0:
            return 100.0
        return 100.0 * (self.detected + self.redundant) / self.total

    @property
    def fault_coverage(self) -> float:
        if self.total == 0:
            return 100.0
        return 100.0 * self.detected / self.total


@dataclasses.dataclass
class TestSet:
    """The sequences an engine emitted; each applies from reset."""

    __test__ = False  # not a pytest test class, despite the name

    sequences: List[List[List[int]]] = dataclasses.field(default_factory=list)

    def add(self, sequence: Sequence[Sequence[int]]) -> None:
        self.sequences.append([list(v) for v in sequence])

    def total_vectors(self) -> int:
        return sum(len(s) for s in self.sequences)

    def __len__(self) -> int:
        return len(self.sequences)

    def __iter__(self):
        return iter(self.sequences)


@dataclasses.dataclass
class AtpgResult:
    """Everything a table needs about one engine × circuit run."""

    circuit_name: str
    engine: str
    statuses: Dict[Fault, FaultStatus]
    test_set: TestSet
    cpu_seconds: float
    checkpoints: List[Checkpoint]
    states_traversed: Set[Tuple[int, ...]]
    backtracks: int = 0
    # Fully-specified states the backward justification examined (a
    # superset indicator of wasted work in invalid state space; the
    # traversed set above counts states the good machine actually
    # visited, the paper's Table 6/8 semantics).
    states_examined: Set[Tuple[int, ...]] = dataclasses.field(
        default_factory=set
    )
    # Time-frame windows the deterministic search expanded, summed over
    # faults (the runner's ledger reports this as "frames expanded").
    frames_expanded: int = 0
    # Machine-step events the fault simulator processed on this run's
    # behalf (random phase, validation, fault dropping).
    sim_events: int = 0
    # ``search.*`` tallies from the search-state observatory (empty when
    # the run's observer was the null one or no oracle was available).
    search_counters: Dict[str, int] = dataclasses.field(
        default_factory=dict
    )
    # Per-fault lifecycle records from the coverage observatory, in
    # resolution order (see repro.obs.coverage — one dict per resolved
    # fault: outcome, provenance, abort reason, effort deltas).
    fault_records: List[Dict[str, Any]] = dataclasses.field(
        default_factory=list
    )

    def summary(self) -> CoverageSummary:
        return summarize(self.statuses.values())

    def counters(self) -> Dict[str, float]:
        """Flat JSON-able effort/outcome counters for the run ledger.

        Keys follow the obs dotted naming convention (see DESIGN.md
        "Metric naming"); ledger rows store them verbatim.
        """
        summary = self.summary()
        counters: Dict[str, float] = {
            "atpg.faults_total": summary.total,
            "atpg.faults_detected": summary.detected,
            "atpg.faults_redundant": summary.redundant,
            "atpg.faults_aborted": summary.aborted,
            "atpg.backtracks": self.backtracks,
            "atpg.frames_expanded": self.frames_expanded,
            "atpg.states_traversed": len(self.states_traversed),
            "atpg.states_examined": len(self.states_examined),
            "atpg.test_sequences": len(self.test_set),
            "atpg.test_vectors": self.test_set.total_vectors(),
            "atpg.cpu_seconds": self.cpu_seconds,
            "sim.events": self.sim_events,
        }
        counters.update(
            (key, self.search_counters[key])
            for key in sorted(self.search_counters)
        )
        counters.update(lifecycle_counter_block(self.fault_records))
        return counters

    @property
    def fault_coverage(self) -> float:
        return self.summary().fault_coverage

    @property
    def fault_efficiency(self) -> float:
        return self.summary().fault_efficiency

    def __str__(self) -> str:
        return (
            f"{self.engine} on {self.circuit_name}: {self.summary()} in "
            f"{self.cpu_seconds:.1f}s, {len(self.test_set)} sequences, "
            f"{len(self.states_traversed)} states traversed"
        )


class WorkClock:
    """Deterministic virtual clock: time advances by charged work units.

    One unit is a fixed (arbitrary) slice of "CPU"; engines charge the
    clock at deterministic points — per backtrack, per expanded frame
    window, per simulated sequence — so the resulting pseudo-seconds are
    a pure function of the search trajectory.  Two runs with the same
    circuit, faults and seeds therefore report identical cpu_seconds and
    identical budget cuts, on any machine and in any process.
    """

    def __init__(self, seconds_per_unit: float = 1e-4):
        self.seconds_per_unit = seconds_per_unit
        self._units = 0

    def charge(self, units: int = 1) -> None:
        self._units += units

    def seconds(self) -> float:
        return self._units * self.seconds_per_unit


class Stopwatch:
    """Deadline tracking for budget enforcement.

    Measures process CPU time by default; pass a :class:`WorkClock` to
    run against deterministic virtual time instead (the clock is shared
    between the per-circuit and per-fault watches of one engine run).
    """

    def __init__(self, limit_seconds: float, clock: Optional[WorkClock] = None):
        self.clock = clock
        self._start = self._now()
        self._limit = limit_seconds

    def _now(self) -> float:
        if self.clock is not None:
            return self.clock.seconds()
        return time.process_time()

    def charge(self, units: int = 1) -> None:
        """Advance virtual time (no-op under the real clock)."""
        if self.clock is not None:
            self.clock.charge(units)

    def elapsed(self) -> float:
        return self._now() - self._start

    def expired(self) -> bool:
        return self.elapsed() >= self._limit
