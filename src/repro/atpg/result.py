"""Result and budget types shared by every ATPG engine.

The paper's accounting is reproduced exactly:

* **fault coverage** (%FC) — detected / total faults;
* **fault efficiency** (%FE) — (detected + proven redundant) / total;
* **CPU seconds** — engine process time; absolute values are machine
  dependent, the harness reports the retimed/original *ratio* like the
  paper's ``CPU ratio`` column;
* **checkpoints** — (cpu_seconds, fault efficiency so far) samples taken
  after every fault, which regenerate Figure 3's FE-vs-CPU curves.

Engines never run unbounded: an :class:`EffortBudget` caps backtracks,
time-frame window, justification depth and wall clock.  A fault whose
search hits a budget is *aborted* — it counts against both coverage and
efficiency, exactly as the paper's 12-hour manual-halt rule did.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..fault.model import CoverageSummary, Fault, FaultStatus, summarize


@dataclasses.dataclass
class EffortBudget:
    """Search-effort limits for one ATPG run."""

    max_backtracks: int = 1200  # PODEM backtracks per fault (both phases)
    max_frames: int = 8  # forward (propagation) window, frames
    max_justify_depth: int = 24  # backward justification recursion depth
    max_preimages: int = 6  # preimage solutions explored per state cube
    per_fault_seconds: float = 5.0  # wall clock per fault
    total_seconds: float = 1800.0  # wall clock per circuit
    # Random test generation (RTG) phase before deterministic search:
    # cheap detection of the easy faults plus the state-knowledge seed
    # every classical flow starts from.
    random_sequences: int = 64
    random_length: int = 40

    @classmethod
    def quick(cls) -> "EffortBudget":
        """Small budget for tests and smoke runs."""
        return cls(
            max_backtracks=300,
            max_frames=5,
            max_justify_depth=12,
            max_preimages=4,
            per_fault_seconds=1.0,
            total_seconds=120.0,
            random_sequences=24,
            random_length=30,
        )

    @classmethod
    def paper(cls) -> "EffortBudget":
        """The default for the table-regeneration harness."""
        return cls()


@dataclasses.dataclass
class Checkpoint:
    """One Figure-3 sample."""

    cpu_seconds: float
    detected: int
    redundant: int
    processed: int
    total: int

    @property
    def fault_efficiency(self) -> float:
        if self.total == 0:
            return 100.0
        return 100.0 * (self.detected + self.redundant) / self.total

    @property
    def fault_coverage(self) -> float:
        if self.total == 0:
            return 100.0
        return 100.0 * self.detected / self.total


@dataclasses.dataclass
class TestSet:
    """The sequences an engine emitted; each applies from reset."""

    __test__ = False  # not a pytest test class, despite the name

    sequences: List[List[List[int]]] = dataclasses.field(default_factory=list)

    def add(self, sequence: Sequence[Sequence[int]]) -> None:
        self.sequences.append([list(v) for v in sequence])

    def total_vectors(self) -> int:
        return sum(len(s) for s in self.sequences)

    def __len__(self) -> int:
        return len(self.sequences)

    def __iter__(self):
        return iter(self.sequences)


@dataclasses.dataclass
class AtpgResult:
    """Everything a table needs about one engine × circuit run."""

    circuit_name: str
    engine: str
    statuses: Dict[Fault, FaultStatus]
    test_set: TestSet
    cpu_seconds: float
    checkpoints: List[Checkpoint]
    states_traversed: Set[Tuple[int, ...]]
    backtracks: int = 0
    # Fully-specified states the backward justification examined (a
    # superset indicator of wasted work in invalid state space; the
    # traversed set above counts states the good machine actually
    # visited, the paper's Table 6/8 semantics).
    states_examined: Set[Tuple[int, ...]] = dataclasses.field(
        default_factory=set
    )

    def summary(self) -> CoverageSummary:
        return summarize(self.statuses.values())

    @property
    def fault_coverage(self) -> float:
        return self.summary().fault_coverage

    @property
    def fault_efficiency(self) -> float:
        return self.summary().fault_efficiency

    def __str__(self) -> str:
        return (
            f"{self.engine} on {self.circuit_name}: {self.summary()} in "
            f"{self.cpu_seconds:.1f}s, {len(self.test_set)} sequences, "
            f"{len(self.states_traversed)} states traversed"
        )


class Stopwatch:
    """Deadline tracking for budget enforcement (process CPU time)."""

    def __init__(self, limit_seconds: float):
        self._start = time.process_time()
        self._limit = limit_seconds

    def elapsed(self) -> float:
        return time.process_time() - self._start

    def expired(self) -> bool:
        return self.elapsed() >= self._limit
