"""Iterative-array (time-frame) model for structural sequential ATPG.

The classical model ([15] in the paper): a sequential circuit is
unrolled into identical combinational frames, frame ``f``'s register
outputs fed by frame ``f-1``'s register D-inputs.  The single stuck-at
fault is present in *every* frame (a permanent defect).

:class:`UnrolledModel` keeps one compiled copy of the circuit and
re-evaluates the window in five-valued D-calculus on demand.  Decision
variables are the primary inputs of every frame and the frame-0 state
(the machine state the ATPG will later have to justify); everything
else is derived by simulation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import D, DBAR, ONE, X, ZERO, eval_gate5, five_join, five_split
from ..circuit.graph import topological_order
from ..circuit.netlist import Circuit, NodeKind
from ..errors import AtpgError
from ..fault.model import Fault


@dataclasses.dataclass(frozen=True)
class Variable:
    """One decision variable: a PI of some frame, or a frame-0 state bit."""

    kind: str  # "pi" | "state"
    frame: int  # always 0 for state variables
    position: int  # PI index or DFF index


class UnrolledModel:
    """Five-valued multi-frame evaluation engine for one fault.

    All value arrays are indexed by the compiled topological order; use
    :meth:`index_of` to translate node names.
    """

    def __init__(
        self,
        circuit: Circuit,
        fault: Optional[Fault],
        max_frames: int,
    ):
        circuit.check()
        self.circuit = circuit
        self.fault = fault
        self.max_frames = max_frames
        self._order = topological_order(circuit)
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self._order)
        }
        self._pi_index = [self._index[n] for n in circuit.inputs]
        self._po_index = [self._index[n] for n in circuit.outputs]
        self._dff_names = circuit.dff_names()
        self._dff_out = [self._index[n] for n in self._dff_names]
        self._dff_d = [
            self._index[circuit.node(n).fanin[0]] for n in self._dff_names
        ]
        self._plan: List[Tuple[int, object, List[int]]] = []
        for name in self._order:
            node = circuit.node(name)
            if node.kind is NodeKind.GATE:
                self._plan.append(
                    (
                        self._index[name],
                        node.gate,
                        [self._index[f] for f in node.fanin],
                    )
                )
        if fault is not None and fault.node not in self._index:
            raise AtpgError(f"fault site {fault.node!r} not in circuit")
        self._fault_index = (
            self._index[fault.node] if fault is not None else -1
        )
        self._fault_value = fault.stuck_at if fault is not None else ZERO

        # Decision-variable assignments (ternary 0/1; absent = X).
        self.pi_assignment: Dict[Tuple[int, int], int] = {}
        self.state_assignment: Dict[int, int] = {}
        self.num_frames = 1

        # Static observability distances for objective heuristics:
        # gate-count distance to the nearest PO, and to the nearest
        # register D-input (a path into the next frame).
        self.dist_po = self._reverse_distance(set(circuit.outputs))
        self.dist_dff = self._reverse_distance(
            {circuit.node(n).fanin[0] for n in self._dff_names}
        )

    # -- compiled lookups -------------------------------------------------

    @property
    def num_pis(self) -> int:
        return len(self._pi_index)

    @property
    def num_dffs(self) -> int:
        return len(self._dff_out)

    @property
    def num_pos(self) -> int:
        return len(self._po_index)

    @property
    def num_nodes(self) -> int:
        return len(self._order)

    def index_of(self, name: str) -> int:
        return self._index[name]

    def name_of(self, index: int) -> str:
        return self._order[index]

    def pi_indices(self) -> Sequence[int]:
        return self._pi_index

    def po_indices(self) -> Sequence[int]:
        return self._po_index

    def dff_out_indices(self) -> Sequence[int]:
        return self._dff_out

    def dff_d_indices(self) -> Sequence[int]:
        return self._dff_d

    def node_fanin(self, index: int) -> List[int]:
        node = self.circuit.node(self._order[index])
        return [self._index[f] for f in node.fanin]

    def node_gate(self, index: int):
        return self.circuit.node(self._order[index]).gate

    def _reverse_distance(self, targets: Set[str]) -> List[int]:
        """Min gate-count distance from each node to any target node."""
        INF = 10 ** 9
        dist = [INF] * len(self._order)
        worklist = []
        for name in targets:
            if name in self._index:
                dist[self._index[name]] = 0
                worklist.append(self._index[name])
        # Breadth-first over the reversed combinational graph.
        while worklist:
            next_list = []
            for index in worklist:
                node = self.circuit.node(self._order[index])
                if node.kind is NodeKind.DFF:
                    continue  # distances are per-frame (combinational)
                for fanin_name in node.fanin:
                    fanin_index = self._index[fanin_name]
                    if dist[fanin_index] > dist[index] + 1:
                        dist[fanin_index] = dist[index] + 1
                        next_list.append(fanin_index)
            worklist = next_list
        return dist

    # -- assignment management ----------------------------------------------

    def assign(self, variable: Variable, value: int) -> None:
        if value not in (ZERO, ONE):
            raise AtpgError("decision values must be 0 or 1")
        if variable.kind == "pi":
            self.pi_assignment[(variable.frame, variable.position)] = value
        else:
            self.state_assignment[variable.position] = value

    def unassign(self, variable: Variable) -> None:
        if variable.kind == "pi":
            self.pi_assignment.pop((variable.frame, variable.position), None)
        else:
            self.state_assignment.pop(variable.position, None)

    def value_of(self, variable: Variable) -> Optional[int]:
        if variable.kind == "pi":
            return self.pi_assignment.get((variable.frame, variable.position))
        return self.state_assignment.get(variable.position)

    def state_cube(self) -> Dict[int, int]:
        """The frame-0 state requirements accumulated by the search."""
        return dict(self.state_assignment)

    # -- simulation ----------------------------------------------------------

    def simulate(self) -> List[List[int]]:
        """Evaluate all ``num_frames`` frames; returns five-valued value
        arrays (``values[frame][node_index]``)."""
        frames: List[List[int]] = []
        previous_d: Optional[List[int]] = None
        for frame in range(self.num_frames):
            values = [X] * len(self._order)
            for position, index in enumerate(self._pi_index):
                assigned = self.pi_assignment.get((frame, position))
                values[index] = X if assigned is None else assigned
            if frame == 0:
                for position, index in enumerate(self._dff_out):
                    assigned = self.state_assignment.get(position)
                    values[index] = X if assigned is None else assigned
            else:
                for position, index in enumerate(self._dff_out):
                    values[index] = previous_d[position]
            if self._fault_index >= 0:
                self._apply_fault_at_source(values)
            for out_index, gate, fanin_index in self._plan:
                value = eval_gate5(
                    gate, [values[i] for i in fanin_index]
                )
                if out_index == self._fault_index:
                    good, _ = five_split(value)
                    value = five_join(good, self._fault_value)
                values[out_index] = value
            frames.append(values)
            previous_d = [values[i] for i in self._dff_d]
        return frames

    def _apply_fault_at_source(self, values: List[int]) -> None:
        """Inject the fault when its site is a PI or DFF output."""
        index = self._fault_index
        name = self._order[index]
        node = self.circuit.node(name)
        if node.kind is NodeKind.GATE:
            return  # handled during plan evaluation
        good, _ = five_split(values[index])
        values[index] = five_join(good, self._fault_value)

    # -- window control ------------------------------------------------------

    def set_frames(self, count: int) -> None:
        if count < 1 or count > self.max_frames:
            raise AtpgError(
                f"frame count {count} outside [1, {self.max_frames}]"
            )
        self.num_frames = count
        # Drop PI assignments beyond the window.
        for key in [k for k in self.pi_assignment if k[0] >= count]:
            del self.pi_assignment[key]

    def reset_assignments(self) -> None:
        self.pi_assignment.clear()
        self.state_assignment.clear()
