"""Structural sequential ATPG engines.

Three engines mirror the paper's three tools:

* :class:`HitecEngine` — targeted PODEM over time frames with backward
  state justification (HITEC stand-in, the primary engine);
* :class:`SestEngine` — the same search with dynamic illegal-state
  learning (Sequential EST stand-in);
* :class:`SimBasedEngine` — simulation-based sequence breeding
  (Attest/TDX stand-in).

All engines share :class:`EffortBudget` limits, emit :class:`AtpgResult`
with the paper's %FC/%FE accounting, Figure-3 checkpoints, and the
state-traversal instrumentation behind Tables 6 and 8.  They satisfy
the :class:`AtpgEngine` protocol and are constructible by name through
:func:`repro.atpg.registry.get_engine`.
"""

from typing import Optional, Protocol, Sequence, runtime_checkable

from ..fault.model import Fault
from .frames import UnrolledModel, Variable
from .learning import IllegalStateCache, LearningStats, cube_implies, cube_key
from .podem import FaultPodem, JustifyPodem, SearchMeter, Solution
from .result import (
    AtpgResult,
    Checkpoint,
    EffortBudget,
    Stopwatch,
    TestSet,
    WorkClock,
)
from .hitec import HitecEngine, Justifier, run_hitec
from .sest import SestEngine, run_sest
from .simbased import SimBasedEngine, SimBasedOptions, run_simbased
from .registry import ENGINES, EngineSpec, engine_names, get_engine


@runtime_checkable
class AtpgEngine(Protocol):
    """What every test-generation engine in this tree looks like.

    ``name`` identifies the engine family (a registry key), ``run``
    produces the paper-accounting result, and ``metrics`` exposes the
    engine's :class:`~repro.obs.MetricsRegistry` so callers can read
    effort counters without knowing the engine's internals.
    """

    name: str

    def run(self, faults: Optional[Sequence[Fault]] = None) -> AtpgResult:
        ...

    @property
    def metrics(self):
        ...
from .compaction import (
    CompactionReport,
    compact_greedy_cover,
    compact_reverse_order,
)
from .random_patterns import (
    RandomTestGenerator,
    RtgOptions,
    RtgPoint,
    RtgReport,
    random_pattern_coverage,
)

__all__ = [
    "AtpgEngine",
    "AtpgResult",
    "Checkpoint",
    "EffortBudget",
    "ENGINES",
    "EngineSpec",
    "FaultPodem",
    "HitecEngine",
    "IllegalStateCache",
    "Justifier",
    "JustifyPodem",
    "LearningStats",
    "SearchMeter",
    "SestEngine",
    "CompactionReport",
    "compact_greedy_cover",
    "compact_reverse_order",
    "RandomTestGenerator",
    "RtgOptions",
    "RtgPoint",
    "RtgReport",
    "random_pattern_coverage",
    "SimBasedEngine",
    "SimBasedOptions",
    "Solution",
    "Stopwatch",
    "WorkClock",
    "TestSet",
    "UnrolledModel",
    "Variable",
    "cube_implies",
    "cube_key",
    "engine_names",
    "get_engine",
    "run_hitec",
    "run_sest",
    "run_simbased",
]
