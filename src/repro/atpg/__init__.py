"""Structural sequential ATPG engines.

Three engines mirror the paper's three tools:

* :class:`HitecEngine` — targeted PODEM over time frames with backward
  state justification (HITEC stand-in, the primary engine);
* :class:`SestEngine` — the same search with dynamic illegal-state
  learning (Sequential EST stand-in);
* :class:`SimBasedEngine` — simulation-based sequence breeding
  (Attest/TDX stand-in).

All engines share :class:`EffortBudget` limits, emit :class:`AtpgResult`
with the paper's %FC/%FE accounting, Figure-3 checkpoints, and the
state-traversal instrumentation behind Tables 6 and 8.
"""

from .frames import UnrolledModel, Variable
from .learning import IllegalStateCache, LearningStats, cube_implies, cube_key
from .podem import FaultPodem, JustifyPodem, SearchMeter, Solution
from .result import (
    AtpgResult,
    Checkpoint,
    EffortBudget,
    Stopwatch,
    TestSet,
    WorkClock,
)
from .hitec import HitecEngine, Justifier, run_hitec
from .sest import SestEngine, run_sest
from .simbased import SimBasedEngine, SimBasedOptions, run_simbased
from .compaction import (
    CompactionReport,
    compact_greedy_cover,
    compact_reverse_order,
)
from .random_patterns import (
    RandomTestGenerator,
    RtgOptions,
    RtgPoint,
    RtgReport,
    random_pattern_coverage,
)

__all__ = [
    "AtpgResult",
    "Checkpoint",
    "EffortBudget",
    "FaultPodem",
    "HitecEngine",
    "IllegalStateCache",
    "Justifier",
    "JustifyPodem",
    "LearningStats",
    "SearchMeter",
    "SestEngine",
    "CompactionReport",
    "compact_greedy_cover",
    "compact_reverse_order",
    "RandomTestGenerator",
    "RtgOptions",
    "RtgPoint",
    "RtgReport",
    "random_pattern_coverage",
    "SimBasedEngine",
    "SimBasedOptions",
    "Solution",
    "Stopwatch",
    "WorkClock",
    "TestSet",
    "UnrolledModel",
    "Variable",
    "cube_implies",
    "cube_key",
    "run_hitec",
    "run_sest",
    "run_simbased",
]
