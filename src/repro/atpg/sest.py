"""SEST-style sequential ATPG: PODEM search plus dynamic state learning.

Sequential EST ([6], [21] in the paper) distinguishes itself from HITEC
by *learning during the search*: state objectives proven unsatisfiable
are remembered and never re-explored.  This engine shares the forward
phase and justification machinery with :class:`HitecEngine` and turns
on the :class:`~repro.atpg.learning.IllegalStateCache`; the cache
persists across faults within a run, which is where the cited
order-of-magnitude savings come from (§5: "state learning techniques
...have proven to decrease the amount of ATPG time ... by an order of
magnitude").

The learning ablation benchmark (``benchmarks/bench_ablation_learning``)
runs the same circuits through both engines to reproduce that claim's
shape.

The search-state observatory (:mod:`repro.obs.search`) makes the
learning effect directly visible: cubes rejected by the illegal-state
cache without re-proof are tallied as ``search.learned_prunes``, and
``search.states_examined`` counts every cube the justification DFS
still had to touch — a SEST run on the same circuit shows fewer
examined cubes and a nonzero prune count relative to plain HITEC.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuit.netlist import Circuit
from ..fault.model import Fault
from ..obs import Observability
from .hitec import HitecEngine
from .result import AtpgResult, EffortBudget


class SestEngine(HitecEngine):
    """HITEC's phases with SEST's illegal-state learning enabled."""

    def __init__(
        self,
        circuit: Circuit,
        budget: Optional[EffortBudget] = None,
        rng_seed: int = 29,
        obs: Optional[Observability] = None,
    ):
        super().__init__(
            circuit, budget=budget, learning=True, rng_seed=rng_seed, obs=obs
        )
        self.name = "sest"

    @property
    def learning_stats(self):
        """Cache counters for the learning ablation."""
        return self.learning_cache.stats if self.learning_cache else None


def run_sest(
    circuit: Circuit,
    budget: Optional[EffortBudget] = None,
    faults: Optional[Sequence[Fault]] = None,
    obs: Optional[Observability] = None,
) -> AtpgResult:
    """Convenience one-call SEST run (thin wrapper over the registry)."""
    from .registry import get_engine

    return get_engine("sest", circuit, budget=budget, obs=obs).run(faults)
