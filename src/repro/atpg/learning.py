"""Illegal-state learning (the SEST-style dynamic state learning).

Structural sequential ATPGs waste most of their time re-proving that
the same unreachable state cubes cannot be justified — the paper's §5
points at exactly this behavior on low-density-of-encoding circuits.
State-learning ATPGs ([20], [21] in the paper) cache such proofs:

* a state cube whose justification search was *exhaustively* completed
  without success is recorded as illegal;
* any later cube that implies a recorded illegal cube (assigns at least
  the same bits to the same values) is rejected immediately.

The cache is also the ablation knob for the "state learning buys an
order of magnitude" claim the paper cites (§5): the SEST engine enables
it, the HITEC engine does not, and a dedicated benchmark flips it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..obs import Counter, MetricsRegistry

StateCube = Tuple[Tuple[int, int], ...]  # sorted ((position, value), ...)


def cube_key(cube: Dict[int, int]) -> StateCube:
    return tuple(sorted(cube.items()))


def cube_implies(specific: Dict[int, int], general: StateCube) -> bool:
    """True when ``specific`` assigns every (position, value) of
    ``general`` — every state matching ``specific`` matches ``general``,
    so a proof that ``general`` is unjustifiable covers ``specific``."""
    for position, value in general:
        if specific.get(position) != value:
            return False
    return True


class LearningStats:
    """Cache effectiveness counters (surfaced in the ablation bench).

    A read-only view over the cache's ``atpg.learn.*`` obs counters:
    whoever holds the :class:`~repro.obs.MetricsRegistry` sees the same
    numbers this object reports.
    """

    __slots__ = ("_learned", "_hits", "_misses")

    def __init__(
        self,
        learned: Optional[Counter] = None,
        hits: Optional[Counter] = None,
        misses: Optional[Counter] = None,
    ):
        self._learned = learned if learned is not None else Counter()
        self._hits = hits if hits is not None else Counter()
        self._misses = misses if misses is not None else Counter()

    @property
    def cubes_learned(self) -> int:
        return self._learned.value

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def note_learned(self) -> None:
        self._learned.inc()

    def note_hit(self) -> None:
        self._hits.inc()

    def note_miss(self) -> None:
        self._misses.inc()

    def __repr__(self) -> str:  # keeps the old dataclass ergonomics
        return (
            f"LearningStats(cubes_learned={self.cubes_learned}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class IllegalStateCache:
    """Set of state cubes proven unjustifiable, with implication lookup.

    Lookup is linear in the number of learned cubes, which stays small
    (hundreds) for the circuits in this study; the classical
    implementations used the same strategy.
    """

    def __init__(
        self,
        max_entries: int = 5000,
        metrics: Optional[MetricsRegistry] = None,
        **labels: object,
    ):
        self._cubes: List[StateCube] = []
        self._seen: Set[StateCube] = set()
        self._max_entries = max_entries
        registry = metrics if metrics is not None else MetricsRegistry()
        self.stats = LearningStats(
            learned=registry.counter("atpg.learn.cubes_learned", **labels),
            hits=registry.counter("atpg.learn.hits", **labels),
            misses=registry.counter("atpg.learn.misses", **labels),
        )

    def __len__(self) -> int:
        return len(self._cubes)

    def learn(self, cube: Dict[int, int]) -> None:
        """Record a cube proven unjustifiable (caller must guarantee the
        proof was exhaustive, or the cache poisons the search)."""
        if not cube:
            return  # the universal cube can never be illegal
        key = cube_key(cube)
        if key in self._seen or len(self._cubes) >= self._max_entries:
            return
        self._seen.add(key)
        self._cubes.append(key)
        self.stats.note_learned()

    def is_illegal(self, cube: Dict[int, int]) -> bool:
        """True when a learned cube already covers this one."""
        for learned in self._cubes:
            if cube_implies(cube, learned):
                self.stats.note_hit()
                return True
        self.stats.note_miss()
        return False
