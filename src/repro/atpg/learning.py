"""Illegal-state learning (the SEST-style dynamic state learning).

Structural sequential ATPGs waste most of their time re-proving that
the same unreachable state cubes cannot be justified — the paper's §5
points at exactly this behavior on low-density-of-encoding circuits.
State-learning ATPGs ([20], [21] in the paper) cache such proofs:

* a state cube whose justification search was *exhaustively* completed
  without success is recorded as illegal;
* any later cube that implies a recorded illegal cube (assigns at least
  the same bits to the same values) is rejected immediately.

The cache is also the ablation knob for the "state learning buys an
order of magnitude" claim the paper cites (§5): the SEST engine enables
it, the HITEC engine does not, and a dedicated benchmark flips it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

StateCube = Tuple[Tuple[int, int], ...]  # sorted ((position, value), ...)


def cube_key(cube: Dict[int, int]) -> StateCube:
    return tuple(sorted(cube.items()))


def cube_implies(specific: Dict[int, int], general: StateCube) -> bool:
    """True when ``specific`` assigns every (position, value) of
    ``general`` — every state matching ``specific`` matches ``general``,
    so a proof that ``general`` is unjustifiable covers ``specific``."""
    for position, value in general:
        if specific.get(position) != value:
            return False
    return True


@dataclasses.dataclass
class LearningStats:
    """Cache effectiveness counters (surfaced in the ablation bench)."""

    cubes_learned: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class IllegalStateCache:
    """Set of state cubes proven unjustifiable, with implication lookup.

    Lookup is linear in the number of learned cubes, which stays small
    (hundreds) for the circuits in this study; the classical
    implementations used the same strategy.
    """

    def __init__(self, max_entries: int = 5000):
        self._cubes: List[StateCube] = []
        self._seen: Set[StateCube] = set()
        self._max_entries = max_entries
        self.stats = LearningStats()

    def __len__(self) -> int:
        return len(self._cubes)

    def learn(self, cube: Dict[int, int]) -> None:
        """Record a cube proven unjustifiable (caller must guarantee the
        proof was exhaustive, or the cache poisons the search)."""
        if not cube:
            return  # the universal cube can never be illegal
        key = cube_key(cube)
        if key in self._seen or len(self._cubes) >= self._max_entries:
            return
        self._seen.add(key)
        self._cubes.append(key)
        self.stats.cubes_learned += 1

    def is_illegal(self, cube: Dict[int, int]) -> bool:
        """True when a learned cube already covers this one."""
        for learned in self._cubes:
            if cube_implies(cube, learned):
                self.stats.hits += 1
                return True
        self.stats.misses += 1
        return False
