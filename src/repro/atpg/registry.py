"""Engine registry: the one place that maps engine names to classes.

Everything that needs "an engine by name" — the harness runner, the
CLI, benchmarks, tests — goes through :func:`get_engine`; nothing else
in the tree is allowed to branch on engine-name strings.  Each entry is
an :class:`EngineSpec` carrying the constructor and the paper context
the name stands for (HITEC [11], SEST [21], the Attest/TDX-style
simulation-based family).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from ..circuit.netlist import Circuit
from ..errors import AtpgError
from ..obs import Observability
from .hitec import HitecEngine
from .result import EffortBudget
from .sest import SestEngine
from .simbased import SimBasedEngine, SimBasedOptions


@dataclasses.dataclass(frozen=True)
class EngineSpec:
    """One registered engine family."""

    name: str
    factory: Callable[..., object]  # (circuit, *, budget, obs[, options])
    description: str
    takes_options: bool = False  # accepts a SimBasedOptions-style object
    aliases: Tuple[str, ...] = ()


def _make_hitec(circuit: Circuit, *, budget=None, obs=None):
    return HitecEngine(circuit, budget=budget, obs=obs)


def _make_sest(circuit: Circuit, *, budget=None, obs=None):
    return SestEngine(circuit, budget=budget, obs=obs)


def _make_simbased(circuit: Circuit, *, budget=None, obs=None, options=None):
    return SimBasedEngine(circuit, budget=budget, options=options, obs=obs)


ENGINES: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add an engine spec (extension hook for out-of-tree engines).

    All keys are validated before any is inserted, so a collision
    leaves the registry untouched.
    """
    keys = (spec.name, *spec.aliases)
    for key in keys:
        existing = ENGINES.get(key)
        if existing is not None and existing.name != spec.name:
            raise AtpgError(
                f"engine name {key!r} already registered for "
                f"{existing.name!r}"
            )
    for key in keys:
        ENGINES[key] = spec
    return spec


register_engine(
    EngineSpec(
        name="hitec",
        factory=_make_hitec,
        description="HITEC-style PODEM search over time frames",
    )
)
register_engine(
    EngineSpec(
        name="sest",
        factory=_make_sest,
        description="HITEC phases plus SEST illegal-state learning",
    )
)
register_engine(
    EngineSpec(
        name="simbased",
        factory=_make_simbased,
        description="simulation-based sequence breeding (Attest/TDX family)",
        takes_options=True,
        aliases=("attest",),
    )
)


def engine_names() -> Tuple[str, ...]:
    """Canonical engine names (aliases excluded), sorted."""
    return tuple(sorted({spec.name for spec in ENGINES.values()}))


def get_engine(
    name: str,
    circuit: Circuit,
    *,
    budget: Optional[EffortBudget] = None,
    options: Optional[SimBasedOptions] = None,
    obs: Optional[Observability] = None,
):
    """Construct the named engine (implements the AtpgEngine protocol).

    ``options`` is only legal for engines that declare
    ``takes_options`` (the simulation-based family); passing it to a
    structural engine is an error rather than a silent drop.
    """
    spec = ENGINES.get(str(name).lower())
    if spec is None:
        known = ", ".join(sorted(ENGINES))
        raise AtpgError(f"unknown engine {name!r}; registered: {known}")
    if options is not None and not spec.takes_options:
        raise AtpgError(
            f"engine {spec.name!r} does not take an options object"
        )
    if spec.takes_options:
        return spec.factory(circuit, budget=budget, obs=obs, options=options)
    return spec.factory(circuit, budget=budget, obs=obs)
