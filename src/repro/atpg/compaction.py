"""Static test set compaction.

ATPG emits one sequence per targeted fault plus whatever the random
phase kept; production test sets get compacted before hitting the
tester.  Two classical static techniques, both exact (coverage is
re-verified by fault simulation at every step):

* **reverse-order pass** — fault-simulate the sequences most-recently-
  generated first with fault dropping; early sequences whose faults are
  all covered by later (typically stronger) sequences drop out.
* **greedy covering** — keep sequences in decreasing order of newly
  covered faults until the full detected set is covered (a set-cover
  heuristic).

Compaction never changes which faults are detected — only how many
vectors it takes — and the tests assert exactly that.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set

from ..circuit.netlist import Circuit
from ..fault.model import Fault
from ..fault.simulator import FaultSimulator
from .result import TestSet


@dataclasses.dataclass
class CompactionReport:
    """Before/after accounting for one compaction run."""

    original_sequences: int
    original_vectors: int
    compacted: TestSet
    detected: Set[Fault]

    @property
    def compacted_sequences(self) -> int:
        return len(self.compacted)

    @property
    def compacted_vectors(self) -> int:
        return self.compacted.total_vectors()

    @property
    def vector_reduction_percent(self) -> float:
        if self.original_vectors == 0:
            return 0.0
        saved = self.original_vectors - self.compacted_vectors
        return 100.0 * saved / self.original_vectors


def _detections_per_sequence(
    simulator: FaultSimulator,
    sequences: List[List[List[int]]],
    faults: Optional[Sequence[Fault]],
) -> List[Set[Fault]]:
    """Which faults each sequence detects, independently (no dropping)."""
    per_sequence: List[Set[Fault]] = []
    for sequence in sequences:
        report = simulator.run(
            [sequence], faults=faults, drop=False
        )
        per_sequence.append(set(report.detected))
    return per_sequence


def compact_reverse_order(
    circuit: Circuit,
    test_set: TestSet,
    faults: Optional[Sequence[Fault]] = None,
) -> CompactionReport:
    """Reverse-order compaction with fault dropping."""
    simulator = FaultSimulator(circuit, faults=faults)
    sequences = [list(s) for s in test_set]
    baseline = simulator.run(sequences)
    target = set(baseline.detected)

    remaining = set(target)
    kept_reversed: List[List[List[int]]] = []
    for sequence in reversed(sequences):
        if not remaining:
            break
        report = simulator.run(
            [sequence], faults=sorted(remaining), drop=False
        )
        if report.detected:
            kept_reversed.append(sequence)
            remaining -= set(report.detected)
    compacted = TestSet()
    for sequence in reversed(kept_reversed):
        compacted.add(sequence)
    return CompactionReport(
        original_sequences=len(sequences),
        original_vectors=sum(len(s) for s in sequences),
        compacted=compacted,
        detected=target,
    )


def compact_greedy_cover(
    circuit: Circuit,
    test_set: TestSet,
    faults: Optional[Sequence[Fault]] = None,
) -> CompactionReport:
    """Greedy set-cover compaction (most new detections first)."""
    simulator = FaultSimulator(circuit, faults=faults)
    sequences = [list(s) for s in test_set]
    per_sequence = _detections_per_sequence(
        simulator, sequences, faults
    )
    target: Set[Fault] = set()
    for detected in per_sequence:
        target |= detected

    remaining = set(target)
    chosen: List[int] = []
    available = list(range(len(sequences)))
    while remaining and available:
        best = max(
            available, key=lambda i: (len(per_sequence[i] & remaining), -i)
        )
        gain = per_sequence[best] & remaining
        if not gain:
            break
        chosen.append(best)
        remaining -= gain
        available.remove(best)
    chosen.sort()  # preserve application order
    compacted = TestSet()
    for index in chosen:
        compacted.add(sequences[index])
    return CompactionReport(
        original_sequences=len(sequences),
        original_vectors=sum(len(s) for s in sequences),
        compacted=compacted,
        detected=target,
    )
