"""Simulation-based sequential ATPG (the Attest/TDX stand-in).

A different algorithmic family from PODEM-style search, deliberately:
the paper's argument needs independent engines agreeing that retimed
circuits are harder.  This engine never builds time frames; it breeds
test sequences against the fault simulator (the CONTEST [Agrawal et
al.] school, which commercial tools of the era such as Attest's TDX
drew on):

1. **Random phase** — batches of random from-reset sequences; keep any
   sequence that detects new faults.
2. **Hill-climbing phase** — mutate the best recent sequences (bit
   flips, extensions) and keep improvements, until a stall or the
   budget ends the run.

The engine never proves redundancy, so its fault efficiency ≈ fault
coverage — visible in the paper's Attest rows (Table 3), where %FE
equals %FC on most circuits.

Why it degrades on retimed circuits: random/mutated sequences revisit
the tiny valid-state subspace slowly when the encoding is sparse, so
new detections dry up and the stall cutoff fires with faults left
undetected — the same density-of-encoding story through a different
mechanism.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gates import X
from ..circuit.netlist import Circuit
from ..errors import AtpgError
from ..fault.collapse import collapse_faults
from ..fault.model import Fault, FaultStatus
from ..fault.simulator import FaultSimulator
from ..obs import Observability
from ..obs.coverage import (
    ABORT_STALL,
    ABORT_TIME_BUDGET,
    CoverageObserver,
    PROV_BREEDING,
)
from ..obs.search import SearchObserver, StateClassifier
from .._util import make_rng
from .result import (
    AtpgResult,
    Checkpoint,
    EffortBudget,
    Stopwatch,
    TestSet,
    WorkClock,
)


@dataclasses.dataclass
class SimBasedOptions:
    """Knobs for the simulation-based engine."""

    batch_size: int = 12  # sequences per round
    sequence_length: int = 40  # vectors per random sequence
    mutation_rate: float = 0.08  # per-bit flip probability
    stall_rounds: int = 6  # rounds without improvement before stopping
    elite_pool: int = 8  # best sequences kept for mutation
    sim_backend: str = "compiled"  # fault-sim substrate (ablation knob)


class SimBasedEngine:
    """Breeds from-reset test sequences against the fault simulator."""

    name = "simbased"

    def __init__(
        self,
        circuit: Circuit,
        budget: Optional[EffortBudget] = None,
        options: Optional[SimBasedOptions] = None,
        rng_seed: int = 23,
        obs: Optional[Observability] = None,
    ):
        circuit.check()
        if any(dff.init == X for dff in circuit.dffs()):
            raise AtpgError(
                f"circuit {circuit.name!r} has no reset state; this "
                "study's engines require one (see DESIGN.md)"
            )
        self.circuit = circuit
        self.budget = budget or EffortBudget.paper()
        self.options = options or SimBasedOptions()
        self.obs = obs if obs is not None else Observability()
        labels = {"engine": self.name, "circuit": circuit.name}
        registry = self.obs.metrics
        self._ctr_rounds = registry.counter("atpg.rounds", **labels)
        self._ctr_detected = registry.counter(
            "atpg.faults_detected", **labels
        )
        self._ctr_aborted = registry.counter("atpg.faults_aborted", **labels)
        self._rng = make_rng(rng_seed)
        self._simulator = FaultSimulator(
            circuit, metrics=registry, backend=self.options.sim_backend
        )
        self._num_pis = len(circuit.inputs)
        # Shared valid/invalid oracle (memoized across runs); a fresh
        # per-run observer streams every newly traversed state through
        # it.  For this engine every traversed state is reachable by
        # construction, so its waste fraction is ~0 — the observatory's
        # control group against the structural engines.
        self._classifier = StateClassifier(circuit)

    @property
    def metrics(self):
        """The engine's :class:`~repro.obs.MetricsRegistry` handle."""
        return self.obs.metrics

    def run(self, faults: Optional[Sequence[Fault]] = None) -> AtpgResult:
        if faults is None:
            faults = collapse_faults(self.circuit).representatives
        trace = self.obs.trace
        clock = WorkClock() if self.budget.deterministic_clock else None
        trace.use_clock(clock)
        try:
            with trace.span(
                "atpg.run", engine=self.name, circuit=self.circuit.name
            ):
                return self._run(faults, clock, trace)
        finally:
            trace.use_clock(None)

    def _run(
        self,
        faults: Sequence[Fault],
        clock,
        trace,
    ) -> AtpgResult:
        statuses = {fault: FaultStatus(fault) for fault in faults}
        open_faults: List[Fault] = list(faults)
        test_set = TestSet()
        checkpoints: List[Checkpoint] = []
        states_seen: Set[Tuple[int, ...]] = set()
        observer = SearchObserver(
            self._classifier,
            self.obs.metrics,
            engine=self.name,
            circuit=self.circuit.name,
        )
        coverage = CoverageObserver(
            self.obs.metrics,
            engine=self.name,
            circuit=self.circuit.name,
        )
        watch = Stopwatch(self.budget.total_seconds, clock=clock)
        sim_events_start = self._simulator.events_counter.value
        elite: List[List[List[int]]] = []
        stall = 0
        rounds = 0
        detected_count = 0

        while (
            open_faults
            and stall < self.options.stall_rounds
            and not watch.expired()
        ):
            rounds += 1
            self._ctr_rounds.inc()
            with trace.span("atpg.round", index=rounds):
                batch = self._next_batch(elite)
                improved = False
                for sequence in batch:
                    if watch.expired():
                        break
                    watch.charge(5)  # one sequence through the simulator
                    report = self._simulator.run(
                        [sequence], faults=open_faults
                    )
                    # Stream newly reached states in sorted order (set
                    # iteration order is not deterministic across
                    # processes; the sort keeps the tallies jobs-
                    # invariant).
                    for state in sorted(
                        report.states_traversed - states_seen
                    ):
                        observer.observe_state(state)
                    states_seen |= report.states_traversed
                    if report.detected:
                        improved = True
                        trimmed = self._trim(
                            sequence, report.detected.keys()
                        )
                        test_set.add(trimmed)
                        for fault in report.detected:
                            statuses[fault].state = "detected"
                            statuses[fault].detected_by = len(test_set) - 1
                            detected_count += 1
                            self._ctr_detected.inc()
                            # Every detection here is incidental: bred
                            # sequences target no specific fault.
                            coverage.note_incidental(
                                fault,
                                PROV_BREEDING,
                                len(test_set) - 1,
                                elapsed=watch.elapsed(),
                            )
                        open_faults = [
                            f
                            for f in open_faults
                            if f not in report.detected
                        ]
                        elite.append(trimmed)
                        if len(elite) > self.options.elite_pool:
                            elite.pop(0)
            stall = 0 if improved else stall + 1
            checkpoints.append(
                Checkpoint(
                    cpu_seconds=watch.elapsed(),
                    detected=detected_count,
                    redundant=0,
                    processed=len(statuses) - len(open_faults),
                    total=len(statuses),
                )
            )

        leftover_reason = (
            ABORT_TIME_BUDGET if watch.expired() else ABORT_STALL
        )
        for fault in open_faults:
            statuses[fault].state = "aborted"
            coverage.note_abort(
                fault, leftover_reason, elapsed=watch.elapsed()
            )
        self._ctr_aborted.inc(len(open_faults))
        return AtpgResult(
            circuit_name=self.circuit.name,
            engine=self.name,
            statuses=statuses,
            test_set=test_set,
            cpu_seconds=watch.elapsed(),
            checkpoints=checkpoints,
            states_traversed=states_seen,
            states_examined=set(states_seen),
            sim_events=self._simulator.events_counter.value
            - sim_events_start,
            search_counters=observer.counters(),
            fault_records=coverage.records(),
        )

    # -- sequence generation --------------------------------------------------

    def _next_batch(
        self, elite: List[List[List[int]]]
    ) -> List[List[List[int]]]:
        batch: List[List[List[int]]] = []
        for index in range(self.options.batch_size):
            if elite and index % 2 == 1:
                batch.append(self._mutate(self._rng.choice(elite)))
            else:
                batch.append(self._random_sequence())
        return batch

    def _random_sequence(self) -> List[List[int]]:
        return [
            [self._rng.randrange(2) for _ in range(self._num_pis)]
            for _ in range(self.options.sequence_length)
        ]

    def _mutate(self, sequence: List[List[int]]) -> List[List[int]]:
        mutated = [list(vector) for vector in sequence]
        for vector in mutated:
            for position in range(self._num_pis):
                if self._rng.random() < self.options.mutation_rate:
                    vector[position] ^= 1
        # Occasionally extend: deeper states need longer sequences.
        if self._rng.random() < 0.3:
            mutated.extend(
                self._random_sequence()[: self.options.sequence_length // 4]
            )
        return mutated

    def _trim(self, sequence, detected_faults) -> List[List[int]]:
        """Cut the sequence right after its last useful vector (greedy:
        halve from the end while every fault stays detected)."""
        length = len(sequence)
        while length > 1:
            candidate = sequence[: length // 2 + length % 2]
            report = self._simulator.run(
                [candidate], faults=list(detected_faults), drop=False
            )
            if len(report.detected) != len(detected_faults):
                break
            length = len(candidate)
            sequence = candidate
        return [list(v) for v in sequence[:length]]


def run_simbased(
    circuit: Circuit,
    budget: Optional[EffortBudget] = None,
    faults: Optional[Sequence[Fault]] = None,
    options: Optional[SimBasedOptions] = None,
    obs: Optional[Observability] = None,
) -> AtpgResult:
    """Convenience one-call simulation-based run (registry wrapper)."""
    from .registry import get_engine

    return get_engine(
        "simbased", circuit, budget=budget, options=options, obs=obs
    ).run(faults)
