"""Standalone random test generation (RTG) utility.

The HITEC/SEST engines embed an RTG phase; this module exposes the same
capability as a first-class tool for studies that need it in isolation
(random-pattern-resistance analysis, coverage-vs-vector-count curves,
seeding other engines' state knowledge).  Supports biased input weights
— classical weighted random testing — and an optional per-input hold
probability that produces the temporally correlated sequences control
logic tends to need.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .._util import make_rng
from ..circuit.netlist import Circuit
from ..errors import AtpgError
from ..fault.collapse import collapse_faults
from ..fault.model import Fault
from ..fault.simulator import FaultSimulator
from .result import TestSet


@dataclasses.dataclass
class RtgOptions:
    """Random-pattern generation knobs."""

    num_sequences: int = 64
    sequence_length: int = 40
    seed: int = 11
    # Probability that each input is 1 (per input; default uniform).
    weights: Optional[Dict[str, float]] = None
    # Probability that an input holds last cycle's value instead of
    # re-rolling (temporal correlation).
    hold_probability: float = 0.0
    # Fault-sim substrate ("compiled" | "interpreted"; ablation knob).
    sim_backend: str = "compiled"


@dataclasses.dataclass
class RtgPoint:
    """One sample of the coverage growth curve."""

    sequences_applied: int
    vectors_applied: int
    faults_detected: int


@dataclasses.dataclass
class RtgReport:
    """Outcome of a random test generation run."""

    test_set: TestSet  # only the sequences that detected new faults
    detected: Set[Fault]
    undetected: List[Fault]
    curve: List[RtgPoint]
    states_traversed: Set[Tuple[int, ...]]

    def coverage_percent(self) -> float:
        total = len(self.detected) + len(self.undetected)
        if total == 0:
            return 100.0
        return 100.0 * len(self.detected) / total


class RandomTestGenerator:
    """Greedy random-sequence selection against the fault simulator."""

    def __init__(
        self,
        circuit: Circuit,
        options: Optional[RtgOptions] = None,
        faults: Optional[Sequence[Fault]] = None,
    ):
        circuit.check()
        self.circuit = circuit
        self.options = options or RtgOptions()
        if not 0.0 <= self.options.hold_probability < 1.0:
            raise AtpgError("hold_probability must be in [0, 1)")
        self._simulator = FaultSimulator(
            circuit, faults=faults, backend=self.options.sim_backend
        )
        self._weights = self._resolve_weights()

    def _resolve_weights(self) -> List[float]:
        weights = self.options.weights or {}
        resolved = []
        for pi in self.circuit.inputs:
            weight = weights.get(pi, 0.5)
            if not 0.0 <= weight <= 1.0:
                raise AtpgError(
                    f"weight for {pi!r} must be in [0, 1], got {weight}"
                )
            resolved.append(weight)
        return resolved

    def run(self) -> RtgReport:
        rng = make_rng(self.options.seed)
        open_faults = list(self._simulator.faults)
        detected: Set[Fault] = set()
        test_set = TestSet()
        curve: List[RtgPoint] = []
        states: Set[Tuple[int, ...]] = set()
        vectors_applied = 0

        for index in range(self.options.num_sequences):
            if not open_faults:
                break
            sequence = self._random_sequence(rng)
            vectors_applied += len(sequence)
            report = self._simulator.run([sequence], faults=open_faults)
            states |= report.states_traversed
            if report.detected:
                test_set.add(sequence)
                detected |= set(report.detected)
                open_faults = [
                    f for f in open_faults if f not in report.detected
                ]
            curve.append(
                RtgPoint(
                    sequences_applied=index + 1,
                    vectors_applied=vectors_applied,
                    faults_detected=len(detected),
                )
            )
        return RtgReport(
            test_set=test_set,
            detected=detected,
            undetected=open_faults,
            curve=curve,
            states_traversed=states,
        )

    def _random_sequence(self, rng) -> List[List[int]]:
        previous: Optional[List[int]] = None
        sequence: List[List[int]] = []
        hold = self.options.hold_probability
        for _ in range(self.options.sequence_length):
            vector = []
            for position, weight in enumerate(self._weights):
                if (
                    previous is not None
                    and hold > 0.0
                    and rng.random() < hold
                ):
                    vector.append(previous[position])
                else:
                    vector.append(1 if rng.random() < weight else 0)
            sequence.append(vector)
            previous = vector
        return sequence


def random_pattern_coverage(
    circuit: Circuit,
    options: Optional[RtgOptions] = None,
) -> RtgReport:
    """One-call RTG run over the collapsed fault list."""
    return RandomTestGenerator(circuit, options=options).run()
